//! Property-based tests for the simulation kernel.

use plp_events::stats::{geometric_mean, Histogram, RunningMean};
use plp_events::{BoundedQueue, BusyResource, Cycle, EventQueue, PipelinedUnit};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, FIFO on ties —
    /// the determinism guarantee the whole simulator rests on.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1_000, 1..300)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(Cycle::new(*t), i);
        }
        let mut last: Option<(Cycle, usize)> = None;
        while let Some((t, id)) = q.pop() {
            if let Some((lt, lid)) = last {
                prop_assert!(t > lt || (t == lt && id > lid),
                    "order violated: ({lt},{lid}) then ({t},{id})");
            }
            last = Some((t, id));
        }
    }

    /// A busy resource serves every request exactly once, never
    /// overlapping: total busy time equals the sum of service times
    /// and completions are strictly increasing for positive services.
    #[test]
    fn busy_resource_conserves_time(reqs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)) {
        let mut r = BusyResource::new();
        let mut last = Cycle::ZERO;
        let mut total = 0u64;
        for (now, service) in &reqs {
            let done = r.reserve(Cycle::new(*now), Cycle::new(*service));
            prop_assert!(done > last);
            prop_assert!(done.get() >= now + service);
            last = done;
            total += service;
        }
        prop_assert_eq!(r.busy_cycles().get(), total);
        prop_assert_eq!(r.served(), reqs.len() as u64);
    }

    /// A pipelined unit with initiation interval 1 completes
    /// monotonically-issued operations exactly `latency` after their
    /// issue slot, and never issues two in the same cycle.
    #[test]
    fn pipelined_unit_slots_unique(arrivals in prop::collection::vec(0u64..5_000, 1..200)) {
        let mut sorted = arrivals.clone();
        sorted.sort();
        let mut u = PipelinedUnit::new(Cycle::new(40), Cycle::new(1));
        let mut seen = std::collections::HashSet::new();
        for a in sorted {
            let done = u.issue(Cycle::new(a));
            let slot = done.get() - 40;
            prop_assert!(slot >= a);
            prop_assert!(seen.insert(slot), "two issues in cycle {slot}");
        }
    }

    /// A bounded queue never exceeds capacity and conserves items:
    /// pushes = pops + still-resident + rejected handbacks.
    #[test]
    fn bounded_queue_conserves_items(
        ops in prop::collection::vec(any::<bool>(), 1..300),
        cap in 1usize..16,
    ) {
        let mut q: BoundedQueue<usize> = BoundedQueue::new(cap);
        let (mut pushed, mut popped, mut rejected) = (0u64, 0u64, 0u64);
        for (i, push) in ops.iter().enumerate() {
            if *push {
                match q.try_push(Cycle::new(i as u64), i) {
                    Ok(()) => pushed += 1,
                    Err(_) => rejected += 1,
                }
            } else if q.pop(Cycle::new(i as u64)).is_some() {
                popped += 1;
            }
            prop_assert!(q.len() <= cap);
        }
        prop_assert_eq!(pushed, popped + q.len() as u64);
        prop_assert_eq!(q.rejected(), rejected);
    }

    /// Histogram mean equals the arithmetic mean of its samples.
    #[test]
    fn histogram_mean_exact(samples in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        let mut m = RunningMean::new();
        for s in &samples {
            h.record(*s);
            m.push(*s as f64);
        }
        prop_assert!((h.mean() - m.mean()).abs() < 1e-6);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min(), samples.iter().min().copied());
        prop_assert_eq!(h.max(), samples.iter().max().copied());
    }

    /// Geometric mean is scale-equivariant: gm(k·xs) = k·gm(xs).
    #[test]
    fn gmean_scale_equivariant(
        xs in prop::collection::vec(0.01f64..100.0, 1..20),
        k in 0.1f64..10.0,
    ) {
        let gm = geometric_mean(&xs).unwrap();
        let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
        let gm2 = geometric_mean(&scaled).unwrap();
        prop_assert!((gm2 - k * gm).abs() / (k * gm) < 1e-9);
    }
}
