//! Property-based tests for trace generation and the codec.

use plp_trace::{codec, Op, Trace, TraceEvent, TraceGenerator, WorkloadProfile};
use plp_events::addr::BlockAddr;
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        5.0f64..200.0,
        0.0f64..1.0,
        0.0f64..0.95,
        1u64..2_000,
        1.0f64..64.0,
    )
        .prop_map(|(stores, nonstack_frac, repeat, fp, run)| {
            WorkloadProfile::builder("prop")
                .base_ipc(1.0)
                .store_ppki(stores, stores * nonstack_frac)
                .load_ppki(50.0)
                .locality(repeat, fp, run)
                .build()
        })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(
        (0u32..10_000, 0u64..u64::MAX / 64, 0u8..3),
        0..300,
    )
    .prop_map(|evs| {
        Trace::new(
            evs.into_iter()
                .map(|(gap, a, k)| TraceEvent {
                    gap_instructions: gap,
                    op: match k {
                        0 => Op::Load { addr: BlockAddr::new(a) },
                        1 => Op::Store { addr: BlockAddr::new(a), stack: false },
                        _ => Op::Store { addr: BlockAddr::new(a), stack: true },
                    },
                })
                .collect(),
        )
    })
}

proptest! {
    /// Codec round-trip is lossless for arbitrary traces (not just
    /// generated ones).
    #[test]
    fn codec_round_trip(trace in arb_trace()) {
        let mut bytes = Vec::new();
        codec::write_trace(&trace, &mut bytes).unwrap();
        prop_assert_eq!(codec::read_trace(&bytes[..]).unwrap(), trace);
    }

    /// Generation hits the requested store rates for any profile.
    #[test]
    fn generated_rates_track_profile(profile in arb_profile(), seed in any::<u64>()) {
        let t = TraceGenerator::new(profile.clone(), seed).generate(400_000);
        let full = t.store_ppki(true);
        prop_assert!(
            (full - profile.store_ppki_full).abs() / profile.store_ppki_full < 0.25,
            "full PPKI {full} vs {}", profile.store_ppki_full
        );
        // The instruction budget is met without gross overshoot.
        prop_assert!(t.total_instructions() >= 400_000);
        prop_assert!(t.total_instructions() < 700_000);
    }

    /// All generated addresses stay inside the synthetic address map
    /// (heap footprint or stack region) — nothing escapes into the
    /// metadata regions.
    #[test]
    fn addresses_stay_in_bounds(profile in arb_profile(), seed in any::<u64>()) {
        use plp_trace::{HEAP_BASE_PAGE, STACK_BASE_PAGE, STACK_PAGES};
        let t = TraceGenerator::new(profile.clone(), seed).generate(20_000);
        for ev in &t {
            let page = ev.op.addr().page().index();
            let in_heap =
                (HEAP_BASE_PAGE..HEAP_BASE_PAGE + profile.footprint_pages).contains(&page);
            let in_stack =
                (STACK_BASE_PAGE..STACK_BASE_PAGE + STACK_PAGES).contains(&page);
            prop_assert!(in_heap || in_stack, "page {page:#x} outside the map");
            if ev.op.is_stack_store() {
                prop_assert!(in_stack);
            }
        }
    }
}
