//! Workload synthesis for the PLP experiments.
//!
//! The paper evaluates on 15 SPEC CPU2006 benchmarks run under Gem5.
//! SPEC binaries and SimPoints are not reproducible here, but every
//! figure in the paper is a function of the *persist stream* — its
//! rate, stack/heap split, spatial locality and epoch structure — and
//! the paper publishes exactly those statistics in Table V. This crate
//! synthesizes address traces with those statistics:
//!
//! * [`Trace`] / [`TraceEvent`] / [`Op`] — the trace record model:
//!   instruction gaps, loads and (stack or heap) stores;
//! * [`WorkloadProfile`] — the statistical shape of a benchmark, with a
//!   builder for custom workloads;
//! * [`TraceGenerator`] — deterministic, seeded generation;
//! * [`spec`] — the 15 calibrated benchmark profiles;
//! * [`multi`] — per-stream seed and address-window derivation for
//!   sharded multi-client runs.
//!
//! # Example
//!
//! ```
//! use plp_trace::{spec, TraceGenerator};
//!
//! let profile = spec::benchmark("gamess").unwrap();
//! let trace = TraceGenerator::new(profile.clone(), 1).generate(500_000);
//! // The generated stream reproduces Table V's store rate.
//! let ppki = trace.store_ppki(false);
//! assert!((ppki - profile.store_ppki_nonstack).abs() / ppki < 0.15);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod event;
mod generator;
pub mod multi;
mod profile;
pub mod spec;
mod store;

pub use event::{Op, Trace, TraceEvent};
pub use generator::{TraceGenerator, HEAP_BASE_PAGE, STACK_BASE_PAGE, STACK_PAGES};
pub use profile::{WorkloadProfile, WorkloadProfileBuilder};
pub use store::TraceStore;
