//! The 15 SPEC CPU2006 benchmark profiles the paper evaluates,
//! calibrated to Table V.
//!
//! Persist rates (`store_ppki_full`, `store_ppki_nonstack`) are the
//! paper's published Table V columns verbatim. The remaining knobs are
//! synthesized, since the paper does not publish them:
//!
//! * `base_ipc` — only gamess's 2.45 is quoted (§VII); the rest are
//!   chosen from typical SPEC2006 single-core behaviour (memory-bound
//!   codes like milc/leslie3d/bwaves low, compute-dense codes like
//!   gamess/h264ref/povray high) and scaled so the strict-persistency
//!   overhead distribution matches Fig. 8's range (~2× to ~45×, geomean
//!   ≈ 7×).
//! * `store_repeat_fraction` — set to `1 − o3_ppki / sp_ppki` from
//!   Table V, so that unique-blocks-per-epoch (and hence the o3/epoch
//!   PPKI column) is reproduced by construction.
//! * `footprint_pages` — scaled with the Table V write-back PPKI column
//!   (streaming codes overflow the 4 MB LLC; resident codes do not).
//! * `page_run_len` — longer sequential runs for streaming FP codes.

use crate::WorkloadProfile;

/// Raw per-benchmark calibration record. One row per Table V entry.
struct SpecRow {
    name: &'static str,
    /// Table V: all stores PPKI (`sp_full`).
    sp_full: f64,
    /// Table V: LLC write-backs PPKI (`secure_WB full`).
    wb_full: f64,
    /// Table V: non-stack stores PPKI (`sp`).
    sp: f64,
    /// Table V: epoch stores PPKI at epoch 32 (`o3`).
    o3: f64,
    /// Synthesized baseline IPC (gamess's 2.45 is from the paper).
    ipc: f64,
    /// Synthesized mean sequential run length within a page.
    run: f64,
}

const ROWS: &[SpecRow] = &[
    SpecRow { name: "astar",     sp_full: 83.48,  wb_full: 0.35, sp: 13.21, o3: 1.97,  ipc: 0.80, run: 6.0 },
    SpecRow { name: "bwaves",    sp_full: 100.27, wb_full: 8.70, sp: 61.60, o3: 26.47, ipc: 0.40, run: 32.0 },
    SpecRow { name: "cactusADM", sp_full: 114.59, wb_full: 1.55, sp: 12.35, o3: 5.68,  ipc: 0.70, run: 16.0 },
    SpecRow { name: "gamess",    sp_full: 100.72, wb_full: 0.00, sp: 51.38, o3: 30.43, ipc: 2.45, run: 8.0 },
    SpecRow { name: "gcc",       sp_full: 126.73, wb_full: 1.46, sp: 67.38, o3: 36.64, ipc: 0.60, run: 6.0 },
    SpecRow { name: "gobmk",     sp_full: 125.16, wb_full: 0.17, sp: 34.41, o3: 14.63, ipc: 0.80, run: 4.0 },
    SpecRow { name: "gromacs",   sp_full: 105.73, wb_full: 0.04, sp: 9.66,  o3: 2.69,  ipc: 1.50, run: 8.0 },
    SpecRow { name: "h264ref",   sp_full: 101.17, wb_full: 0.00, sp: 48.80, o3: 10.45, ipc: 1.00, run: 12.0 },
    SpecRow { name: "leslie3d",  sp_full: 108.79, wb_full: 7.78, sp: 58.47, o3: 17.58, ipc: 0.50, run: 32.0 },
    SpecRow { name: "milc",      sp_full: 40.18,  wb_full: 2.00, sp: 13.65, o3: 4.10,  ipc: 0.30, run: 16.0 },
    SpecRow { name: "namd",      sp_full: 133.10, wb_full: 0.18, sp: 19.66, o3: 2.07,  ipc: 0.90, run: 8.0 },
    SpecRow { name: "povray",    sp_full: 150.72, wb_full: 0.00, sp: 39.23, o3: 11.22, ipc: 1.00, run: 6.0 },
    SpecRow { name: "sphinx3",   sp_full: 184.29, wb_full: 0.10, sp: 4.87,  o3: 1.04,  ipc: 0.90, run: 8.0 },
    SpecRow { name: "tonto",     sp_full: 141.84, wb_full: 0.00, sp: 34.45, o3: 16.60, ipc: 0.80, run: 8.0 },
    SpecRow { name: "zeusmp",    sp_full: 175.87, wb_full: 1.92, sp: 19.87, o3: 4.66,  ipc: 0.70, run: 16.0 },
];

fn profile_from(row: &SpecRow) -> WorkloadProfile {
    // Unique-block fraction per epoch observed by the paper; a store
    // re-targets a recent block with the complementary probability.
    // The 1.28 factor corrects for repeats that land across an epoch
    // boundary (they count as unique in their epoch even though they
    // re-target a recent block); it was fitted so the measured
    // epoch-store PPKI at epoch size 32 reproduces Table V's o3 column.
    let repeat = (1.0 - (row.o3 / row.sp.max(1e-9)) / 1.28).clamp(0.0, 0.95);
    // Footprints: resident codes stay near 1 MB (256 pages); each
    // write-back PPKI point adds roughly 4 MB of streamed footprint.
    let footprint = 256 + (row.wb_full * 1024.0) as u64;
    WorkloadProfile::builder(row.name)
        .base_ipc(row.ipc)
        .store_ppki(row.sp_full, row.sp)
        .load_ppki(150.0)
        .locality(repeat, footprint, row.run)
        .paper_reference(row.o3, row.wb_full)
        .build()
}

/// All 15 benchmark profiles, in the paper's order.
///
/// # Example
///
/// ```
/// let all = plp_trace::spec::all_benchmarks();
/// assert_eq!(all.len(), 15);
/// assert_eq!(all[0].name, "astar");
/// ```
pub fn all_benchmarks() -> Vec<WorkloadProfile> {
    ROWS.iter().map(profile_from).collect()
}

/// Looks up one benchmark profile by name (case-sensitive, as the
/// paper spells them, e.g. `"cactusADM"`).
///
/// # Example
///
/// ```
/// let gamess = plp_trace::spec::benchmark("gamess").unwrap();
/// assert!((gamess.base_ipc - 2.45).abs() < 1e-12); // quoted in §VII
/// assert!(plp_trace::spec::benchmark("nonesuch").is_none());
/// ```
pub fn benchmark(name: &str) -> Option<WorkloadProfile> {
    ROWS.iter().find(|r| r.name == name).map(profile_from)
}

/// The paper's Table V reference values for a benchmark:
/// `(sp_full, secure_wb_full, sp, o3)` PPKI columns.
pub fn table5_reference(name: &str) -> Option<(f64, f64, f64, f64)> {
    ROWS.iter()
        .find(|r| r.name == name)
        .map(|r| (r.sp_full, r.wb_full, r.sp, r.o3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_benchmarks() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 15);
        let names: Vec<_> = all.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"gamess"));
        assert!(names.contains(&"zeusmp"));
    }

    #[test]
    fn table5_averages_match_paper() {
        // The paper quotes averages 119.51 / 1.61 / 32.60 / 12.41.
        let all = all_benchmarks();
        let n = all.len() as f64;
        let avg_full: f64 = all.iter().map(|p| p.store_ppki_full).sum::<f64>() / n;
        let avg_sp: f64 = all.iter().map(|p| p.store_ppki_nonstack).sum::<f64>() / n;
        let avg_o3: f64 =
            all.iter().filter_map(|p| p.paper_epoch_ppki).sum::<f64>() / n;
        let avg_wb: f64 =
            all.iter().filter_map(|p| p.paper_writeback_ppki).sum::<f64>() / n;
        assert!((avg_full - 119.51).abs() < 0.2, "got {avg_full}");
        assert!((avg_sp - 32.60).abs() < 0.2, "got {avg_sp}");
        assert!((avg_o3 - 12.41).abs() < 0.2, "got {avg_o3}");
        assert!((avg_wb - 1.61).abs() < 0.2, "got {avg_wb}");
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("cactusADM").is_some());
        assert!(benchmark("CactusADM").is_none());
        let (full, wb, sp, o3) = table5_reference("gcc").unwrap();
        assert_eq!((full, wb, sp, o3), (126.73, 1.46, 67.38, 36.64));
    }

    #[test]
    fn repeat_fraction_tracks_epoch_ratio() {
        let astar = benchmark("astar").unwrap();
        // 1 - (1.97/13.21)/1.28 = 0.8835
        assert!((astar.store_repeat_fraction - 0.8835).abs() < 1e-3);
        let gamess = benchmark("gamess").unwrap();
        assert!(
            (gamess.store_repeat_fraction - (1.0 - (30.43 / 51.38) / 1.28)).abs() < 1e-9
        );
        // Higher-locality paper ratio -> higher repeat fraction.
        let namd = benchmark("namd").unwrap();
        assert!(namd.store_repeat_fraction > astar.store_repeat_fraction);
    }

    #[test]
    fn streaming_codes_have_large_footprints() {
        let bwaves = benchmark("bwaves").unwrap();
        let gamess = benchmark("gamess").unwrap();
        assert!(bwaves.footprint_pages > 8 * gamess.footprint_pages);
    }
}
