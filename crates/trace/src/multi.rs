//! Multi-stream trace derivation for sharded-topology runs.
//!
//! A sharded simulation drives N client streams, each an independent
//! instance of the same benchmark profile. Two pieces make that
//! deterministic and cache-friendly:
//!
//! * [`stream_seed`] derives one generator seed per stream from the run
//!   seed. Stream 0 gets the run seed *verbatim*, so a one-stream run
//!   reuses exactly the trace (and the memoized [`TraceStore`] entry)
//!   the unsharded path has always used; higher streams get a
//!   splitmix64-mixed seed so their address/gap sequences are
//!   decorrelated.
//! * [`stream_block_offset`] places each stream in a disjoint window of
//!   the physical address space, [`STREAM_PAGE_STRIDE`] pages apart, so
//!   clients never alias each other's pages. Stream 0's offset is zero:
//!   its addresses are untouched.
//!
//! The offsets are applied at dispatch time by the sharded coordinator
//! (not baked into the generated trace), so all streams of a run share
//! the per-seed trace memoization.
//!
//! [`TraceStore`]: crate::TraceStore

use plp_events::addr::{BlockAddr, BLOCKS_PER_PAGE};

/// Page stride between consecutive client streams' address windows.
///
/// Comfortably clears one stream's whole synthetic address space (heap
/// footprint plus the stack region at [`STACK_BASE_PAGE`]), and eight
/// strides still fit far inside the default 8-ary depth-9 BMT coverage.
pub const STREAM_PAGE_STRIDE: u64 = 0x20_0000;

/// Derives the trace-generator seed for `stream` from the run seed.
///
/// Stream 0 returns `run_seed` unchanged — a `--streams 1` run is
/// byte-identical to the unsharded path and shares its memoized trace.
/// Other streams mix the pair through a splitmix64 finalizer.
///
/// # Example
///
/// ```
/// use plp_trace::multi::stream_seed;
///
/// assert_eq!(stream_seed(7, 0), 7);
/// assert_ne!(stream_seed(7, 1), 7);
/// assert_ne!(stream_seed(7, 1), stream_seed(7, 2));
/// assert_ne!(stream_seed(7, 1), stream_seed(8, 1));
/// ```
pub fn stream_seed(run_seed: u64, stream: u32) -> u64 {
    if stream == 0 {
        return run_seed;
    }
    // splitmix64: one increment per stream, then the finalizer.
    let mut z = run_seed.wrapping_add((stream as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The block-index offset of `stream`'s address window (zero for
/// stream 0).
#[inline]
pub const fn stream_block_offset(stream: u32) -> u64 {
    stream as u64 * STREAM_PAGE_STRIDE * BLOCKS_PER_PAGE as u64
}

/// The per-stream page stride that fits `streams` windows inside a
/// topology's global integrity coverage of `covered_pages` pages
/// (per-shard BMT leaf count × shard count), capped at the default
/// [`STREAM_PAGE_STRIDE`].
///
/// The default stride assumes the paper's 16-million-leaf tree;
/// ablation configs shrink the tree, and their sharded runs shrink the
/// stride with it so every stream's heap window still maps to a valid
/// leaf on its owning shard.
///
/// # Example
///
/// ```
/// use plp_trace::multi::{fitted_stride, STREAM_PAGE_STRIDE};
///
/// // The default tree: the cap wins.
/// assert_eq!(fitted_stride(8, 16_777_216), STREAM_PAGE_STRIDE);
/// // A levels-7 ablation tree over 4 shards: coverage is divided
/// // evenly among the 4 streams.
/// assert_eq!(fitted_stride(4, 262_144 * 4), 262_144);
/// ```
#[inline]
pub const fn fitted_stride(streams: u32, covered_pages: u64) -> u64 {
    let even = covered_pages / streams as u64;
    if even < STREAM_PAGE_STRIDE {
        even
    } else {
        STREAM_PAGE_STRIDE
    }
}

/// Rebases a stream-local address into the stream's global window.
///
/// # Example
///
/// ```
/// use plp_events::addr::BlockAddr;
/// use plp_trace::multi::{rebase, STREAM_PAGE_STRIDE};
///
/// let a = BlockAddr::new(100);
/// assert_eq!(rebase(a, 0), a);
/// assert_eq!(rebase(a, 2).page().index(), a.page().index() + 2 * STREAM_PAGE_STRIDE);
/// assert_eq!(rebase(a, 2).slot_in_page(), a.slot_in_page());
/// ```
#[inline]
pub const fn rebase(addr: BlockAddr, stream: u32) -> BlockAddr {
    rebase_with(addr, stream, STREAM_PAGE_STRIDE)
}

/// [`rebase`] with an explicit page stride (see [`fitted_stride`]).
/// Stream 0 is untouched for any stride.
#[inline]
pub const fn rebase_with(addr: BlockAddr, stream: u32, stride_pages: u64) -> BlockAddr {
    BlockAddr::new(addr.index() + stream as u64 * stride_pages * BLOCKS_PER_PAGE as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec, TraceGenerator, STACK_BASE_PAGE, STACK_PAGES};

    #[test]
    fn stream_zero_seed_is_identity() {
        for seed in [0u64, 7, 42, u64::MAX] {
            assert_eq!(stream_seed(seed, 0), seed);
        }
    }

    #[test]
    fn stream_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for seed in [7u64, 8, 1234] {
            for stream in 0..16u32 {
                assert!(seen.insert(stream_seed(seed, stream)));
            }
        }
    }

    #[test]
    fn stream_seeds_yield_distinct_traces() {
        let p = spec::benchmark("gcc").unwrap();
        let a = TraceGenerator::new(p.clone(), stream_seed(7, 0)).generate(20_000);
        let b = TraceGenerator::new(p, stream_seed(7, 1)).generate(20_000);
        assert_ne!(a, b);
    }

    #[test]
    fn windows_do_not_overlap() {
        // A stream's whole synthetic space (heap + stack) ends below
        // the next stream's window.
        let top = STACK_BASE_PAGE + STACK_PAGES;
        assert!(top < STREAM_PAGE_STRIDE);
        let end0 = rebase(BlockAddr::new(top * BLOCKS_PER_PAGE as u64), 0);
        let start1 = rebase(BlockAddr::new(0), 1);
        assert!(end0.index() < start1.index());
    }

    #[test]
    fn fitted_stride_tracks_small_trees() {
        // Default coverage: capped at the constant.
        assert_eq!(fitted_stride(1, 16_777_216), STREAM_PAGE_STRIDE);
        assert_eq!(fitted_stride(8, 16_777_216), STREAM_PAGE_STRIDE);
        // Shrunken ablation tree (8-ary, 7 levels = 262144 leaves):
        // the coverage is divided evenly, and every shrunken window
        // still clears one stream's heap footprint.
        for (streams, shards) in [(2u32, 2u64), (4, 4)] {
            let stride = fitted_stride(streams, 262_144 * shards);
            assert_eq!(stride, 262_144);
            assert!((streams as u64 - 1) * stride + 262_144 <= 262_144 * shards);
        }
        // rebase_with at the fitted stride keeps stream 0 untouched.
        let a = BlockAddr::new(123);
        assert_eq!(rebase_with(a, 0, 262_144), a);
        assert_eq!(
            rebase_with(a, 3, 262_144).page().index(),
            a.page().index() + 3 * 262_144
        );
    }

    #[test]
    fn rebase_preserves_page_slot() {
        let a = BlockAddr::new(5 * BLOCKS_PER_PAGE as u64 + 17);
        for stream in 0..4 {
            let r = rebase(a, stream);
            assert_eq!(r.slot_in_page(), a.slot_in_page());
            assert_eq!(
                r.page().index(),
                a.page().index() + stream as u64 * STREAM_PAGE_STRIDE
            );
        }
    }
}
