//! The synthetic trace generator.

use std::collections::VecDeque;

use plp_events::addr::{BlockAddr, PageAddr, BLOCKS_PER_PAGE};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::{Op, Trace, TraceEvent, WorkloadProfile};

/// First heap page of the synthetic address space.
pub const HEAP_BASE_PAGE: u64 = 0x1_0000;
/// First stack page of the synthetic address space (kept far from the
/// heap so stack and heap never share BMT subtrees near the leaves).
pub const STACK_BASE_PAGE: u64 = 0x1E_0000;
/// Number of stack pages stores cycle through.
pub const STACK_PAGES: u64 = 8;

/// How many recent store targets the repeat distribution draws from.
const RECENT_WINDOW: usize = 16;

/// Generates deterministic synthetic traces from a
/// [`WorkloadProfile`].
///
/// The same `(profile, seed)` pair always produces the same trace, so
/// every experiment in the harness is reproducible.
///
/// # Example
///
/// ```
/// use plp_trace::{spec, TraceGenerator};
///
/// let profile = spec::benchmark("gcc").unwrap();
/// let t1 = TraceGenerator::new(profile.clone(), 7).generate(10_000);
/// let t2 = TraceGenerator::new(profile, 7).generate(10_000);
/// assert_eq!(t1, t2);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    rng: SmallRng,
    /// Sequential store cursor within the current heap page.
    cursor: BlockAddr,
    /// Recently stored heap blocks, for the repeat distribution.
    recent: VecDeque<BlockAddr>,
    /// Round-robin stack slot.
    stack_cursor: u64,
}

impl TraceGenerator {
    /// Creates a generator with a deterministic seed.
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let first_page = HEAP_BASE_PAGE + rng.random_range(0..profile.footprint_pages);
        TraceGenerator {
            profile,
            rng,
            cursor: PageAddr::new(first_page).first_block(),
            recent: VecDeque::with_capacity(RECENT_WINDOW),
            stack_cursor: 0,
        }
    }

    /// The profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Generates a trace of approximately `instructions` instructions.
    ///
    /// # Panics
    ///
    /// Panics if the profile's total memory-operation rate is zero.
    pub fn generate(&mut self, instructions: u64) -> Trace {
        let ops_ppki = self.profile.store_ppki_full + self.profile.load_ppki;
        assert!(ops_ppki > 0.0, "profile has no memory operations");
        let mean_gap = (1000.0 / ops_ppki - 1.0).max(0.0);
        let store_share = self.profile.store_ppki_full / ops_ppki;
        let stack_share = self.profile.stack_store_fraction();

        let mut events = Vec::new();
        let mut issued: u64 = 0;
        while issued < instructions {
            let gap = self.sample_gap(mean_gap);
            let op = if self.rng.random_bool(store_share) {
                if stack_share > 0.0 && self.rng.random_bool(stack_share) {
                    Op::Store {
                        addr: self.next_stack_block(),
                        stack: true,
                    }
                } else {
                    Op::Store {
                        addr: self.next_heap_store(),
                        stack: false,
                    }
                }
            } else {
                Op::Load {
                    addr: self.next_load(),
                }
            };
            events.push(TraceEvent {
                gap_instructions: gap,
                op,
            });
            issued += gap as u64 + 1;
        }
        Trace::new(events)
    }

    /// Geometric-ish gap with the requested mean.
    fn sample_gap(&mut self, mean: f64) -> u32 {
        if mean <= 0.0 {
            return 0;
        }
        // Exponential sample, rounded; clamped to keep gaps sane.
        let u: f64 = self.rng.random();
        let g = -mean * (1.0 - u).ln();
        g.round().min(100_000.0) as u32
    }

    fn random_footprint_page(&mut self) -> PageAddr {
        PageAddr::new(HEAP_BASE_PAGE + self.rng.random_range(0..self.profile.footprint_pages))
    }

    fn next_heap_store(&mut self) -> BlockAddr {
        let addr = if !self.recent.is_empty()
            && self.rng.random_bool(self.profile.store_repeat_fraction)
        {
            // Re-target a recent block (same cache line coalesces in
            // the write-back cache within an epoch).
            let i = self.rng.random_range(0..self.recent.len());
            self.recent[i]
        } else {
            // Advance the sequential cursor; occasionally jump pages.
            let jump = self.rng.random_bool(1.0 / self.profile.page_run_len.max(1.0));
            let at_page_end = self.cursor.slot_in_page() == BLOCKS_PER_PAGE - 1;
            self.cursor = if jump || at_page_end {
                let page = self.random_footprint_page();
                page.block(self.rng.random_range(0..BLOCKS_PER_PAGE))
            } else {
                BlockAddr::new(self.cursor.index() + 1)
            };
            self.cursor
        };
        if self.recent.len() == RECENT_WINDOW {
            self.recent.pop_front();
        }
        self.recent.push_back(addr);
        addr
    }

    fn next_stack_block(&mut self) -> BlockAddr {
        // Stack traffic cycles through a handful of hot frames.
        self.stack_cursor = (self.stack_cursor + 1) % (STACK_PAGES * BLOCKS_PER_PAGE as u64);
        BlockAddr::new(
            PageAddr::new(STACK_BASE_PAGE).first_block().index() + self.stack_cursor,
        )
    }

    fn next_load(&mut self) -> BlockAddr {
        // Loads mostly revisit recent store neighbourhoods (cache hits),
        // occasionally roaming the footprint.
        if !self.recent.is_empty() && self.rng.random_bool(0.8) {
            let i = self.rng.random_range(0..self.recent.len());
            self.recent[i]
        } else {
            let page = self.random_footprint_page();
            let slot = self.rng.random_range(0..BLOCKS_PER_PAGE);
            page.block(slot)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    fn gen(name: &str, instructions: u64) -> Trace {
        TraceGenerator::new(spec::benchmark(name).unwrap(), 42).generate(instructions)
    }

    #[test]
    fn deterministic() {
        let a = gen("astar", 50_000);
        let b = gen("astar", 50_000);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let p = spec::benchmark("astar").unwrap();
        let a = TraceGenerator::new(p.clone(), 1).generate(20_000);
        let b = TraceGenerator::new(p, 2).generate(20_000);
        assert_ne!(a, b);
    }

    #[test]
    fn store_rates_match_profile() {
        for name in ["gcc", "sphinx3", "gamess"] {
            let p = spec::benchmark(name).unwrap();
            let t = gen(name, 2_000_000);
            let full = t.store_ppki(true);
            let nonstack = t.store_ppki(false);
            assert!(
                (full - p.store_ppki_full).abs() / p.store_ppki_full < 0.08,
                "{name}: full PPKI {full} vs target {}",
                p.store_ppki_full
            );
            assert!(
                (nonstack - p.store_ppki_nonstack).abs() / p.store_ppki_nonstack < 0.12,
                "{name}: nonstack PPKI {nonstack} vs target {}",
                p.store_ppki_nonstack
            );
        }
    }

    #[test]
    fn unique_blocks_per_epoch_tracks_repeat_fraction() {
        // Group non-stack stores into epochs of 32 and count unique
        // blocks: the ratio should be near 1 - repeat_fraction (the o3
        // column calibration).
        let p = spec::benchmark("gamess").unwrap();
        let t = gen("gamess", 2_000_000);
        let stores: Vec<_> = t
            .iter()
            .filter(|e| e.op.is_store() && !e.op.is_stack_store())
            .map(|e| e.op.addr())
            .collect();
        let mut unique_total = 0usize;
        let mut epochs = 0usize;
        for chunk in stores.chunks(32) {
            let set: std::collections::HashSet<_> = chunk.iter().collect();
            unique_total += set.len();
            epochs += 1;
        }
        let ratio = unique_total as f64 / (epochs as f64 * 32.0);
        let target = 1.0 - p.store_repeat_fraction;
        assert!(
            (ratio - target).abs() < 0.15,
            "unique ratio {ratio} vs target {target}"
        );
    }

    #[test]
    fn stack_stores_stay_in_stack_region() {
        let t = gen("astar", 200_000);
        for e in &t {
            if e.op.is_stack_store() {
                let page = e.op.addr().page().index();
                assert!((STACK_BASE_PAGE..STACK_BASE_PAGE + STACK_PAGES).contains(&page));
            }
        }
    }

    #[test]
    fn heap_ops_stay_in_footprint() {
        let p = spec::benchmark("gamess").unwrap();
        let t = gen("gamess", 100_000);
        for e in &t {
            if !e.op.is_stack_store() {
                let page = e.op.addr().page().index();
                assert!(
                    (HEAP_BASE_PAGE..HEAP_BASE_PAGE + p.footprint_pages).contains(&page),
                    "op outside footprint: page {page}"
                );
            }
        }
    }

    #[test]
    fn instruction_budget_respected() {
        let t = gen("milc", 100_000);
        assert!(t.total_instructions() >= 100_000);
        // No gross overshoot (the last gap can exceed slightly).
        assert!(t.total_instructions() < 220_000);
    }
}
