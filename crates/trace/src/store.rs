//! A thread-safe store of generated traces.
//!
//! Trace generation is a pure function of `(profile, seed,
//! instructions)`, so every configuration that simulates the same
//! workload at the same length can share one generated [`Trace`]. The
//! experiment harness runs hundreds of configurations over fifteen
//! profiles; the store makes each trace exist exactly once, behind an
//! [`Arc`] that worker threads clone freely.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::{Trace, TraceGenerator, WorkloadProfile};

/// A memoized trace generator, shareable across worker threads.
///
/// # Example
///
/// ```
/// use plp_trace::{spec, TraceStore};
///
/// let store = TraceStore::new();
/// let profile = spec::benchmark("gcc").unwrap();
/// let a = store.get(&profile, 10_000, 7);
/// let b = store.get(&profile, 10_000, 7);
/// // Same workload, same length, same seed: one shared trace.
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TraceStore {
    traces: Mutex<HashMap<(String, u64, u64), Arc<Trace>>>,
}

impl TraceStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the trace for `(profile, instructions, seed)`,
    /// generating it on first request. Generation happens outside the
    /// store lock so concurrent requests for *different* traces never
    /// serialize; a racing duplicate generation is discarded (the
    /// generator is deterministic, so both race entrants produce the
    /// same trace).
    pub fn get(&self, profile: &WorkloadProfile, instructions: u64, seed: u64) -> Arc<Trace> {
        let key = (profile.name.clone(), instructions, seed);
        // lint: allow(no-panic-lib) a poisoned lock means another thread already panicked
        if let Some(t) = self.traces.lock().unwrap().get(&key) {
            return Arc::clone(t);
        }
        let generated = Arc::new(TraceGenerator::new(profile.clone(), seed).generate(instructions));
        Arc::clone(
            self.traces
                .lock()
                // lint: allow(no-panic-lib) a poisoned lock means another thread already panicked
                .unwrap()
                .entry(key)
                .or_insert(generated),
        )
    }

    /// How many distinct traces the store holds.
    pub fn len(&self) -> usize {
        // lint: allow(no-panic-lib) a poisoned lock means another thread already panicked
        self.traces.lock().unwrap().len()
    }

    /// Whether the store holds no traces yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn distinct_keys_get_distinct_traces() {
        let store = TraceStore::new();
        let gcc = spec::benchmark("gcc").unwrap();
        let milc = spec::benchmark("milc").unwrap();
        let a = store.get(&gcc, 5_000, 1);
        let b = store.get(&milc, 5_000, 1);
        let c = store.get(&gcc, 5_000, 2);
        let d = store.get(&gcc, 6_000, 1);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(store.len(), 4);
    }

    #[test]
    fn stored_trace_matches_direct_generation() {
        let store = TraceStore::new();
        let profile = spec::benchmark("astar").unwrap();
        let shared = store.get(&profile, 4_000, 9);
        let direct = TraceGenerator::new(profile, 9).generate(4_000);
        assert_eq!(*shared, direct);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let store = TraceStore::new();
        let profile = spec::benchmark("gcc").unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let t = store.get(&profile, 3_000, 5);
                    assert!(t.total_instructions() >= 3_000);
                });
            }
        });
        assert_eq!(store.len(), 1);
    }
}
