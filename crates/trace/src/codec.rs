//! A compact binary on-disk format for traces.
//!
//! Traces are deterministic given `(profile, seed)`, but persisting
//! them lets experiments be re-run byte-identically across versions of
//! the generator, exchanged between machines, or produced by external
//! tools (e.g. a real PIN/Valgrind pipeline feeding this simulator).
//!
//! Format (all little-endian):
//!
//! ```text
//! magic   "PLPT"            4 bytes
//! version u32               currently 1
//! count   u64               number of events
//! events  count × { gap: u32, kind: u8, addr: u64 }
//! ```
//!
//! `kind` is 0 = load, 1 = heap store, 2 = stack store.

use std::io::{self, Read, Write};

use plp_events::addr::BlockAddr;

use crate::{Op, Trace, TraceEvent};

const MAGIC: &[u8; 4] = b"PLPT";
const VERSION: u32 = 1;

const KIND_LOAD: u8 = 0;
const KIND_STORE: u8 = 1;
const KIND_STACK_STORE: u8 = 2;

/// Serializes a trace.
///
/// # Errors
///
/// Propagates any I/O error from `w`. A `&mut Vec<u8>` never fails.
///
/// # Example
///
/// ```
/// use plp_trace::{codec, spec, TraceGenerator};
///
/// let trace = TraceGenerator::new(spec::benchmark("milc").unwrap(), 1).generate(1_000);
/// let mut bytes = Vec::new();
/// codec::write_trace(&trace, &mut bytes)?;
/// assert_eq!(codec::read_trace(&bytes[..])?, trace);
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(trace.op_count() as u64).to_le_bytes())?;
    for ev in trace {
        w.write_all(&ev.gap_instructions.to_le_bytes())?;
        let (kind, addr) = match ev.op {
            Op::Load { addr } => (KIND_LOAD, addr),
            Op::Store { addr, stack: false } => (KIND_STORE, addr),
            Op::Store { addr, stack: true } => (KIND_STACK_STORE, addr),
        };
        w.write_all(&[kind])?;
        w.write_all(&addr.index().to_le_bytes())?;
    }
    Ok(())
}

/// Deserializes a trace written by [`write_trace`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic, unsupported version or
/// unknown event kind, and `UnexpectedEof` on truncation.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Trace> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a PLP trace file (bad magic)",
        ));
    }
    let mut buf4 = [0u8; 4];
    r.read_exact(&mut buf4)?;
    let version = u32::from_le_bytes(buf4);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let count = u64::from_le_bytes(buf8);
    let mut events = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        r.read_exact(&mut buf4)?;
        let gap_instructions = u32::from_le_bytes(buf4);
        let mut kind = [0u8; 1];
        r.read_exact(&mut kind)?;
        r.read_exact(&mut buf8)?;
        let addr = BlockAddr::new(u64::from_le_bytes(buf8));
        let op = match kind[0] {
            KIND_LOAD => Op::Load { addr },
            KIND_STORE => Op::Store { addr, stack: false },
            KIND_STACK_STORE => Op::Store { addr, stack: true },
            k => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown event kind {k}"),
                ))
            }
        };
        events.push(TraceEvent {
            gap_instructions,
            op,
        });
    }
    Ok(Trace::new(events))
}

/// Writes a trace to a file path.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save_trace(trace: &Trace, path: impl AsRef<std::path::Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_trace(trace, io::BufWriter::new(file))
}

/// Reads a trace from a file path.
///
/// # Errors
///
/// Propagates file-open and decode errors.
pub fn load_trace(path: impl AsRef<std::path::Path>) -> io::Result<Trace> {
    let file = std::fs::File::open(path)?;
    read_trace(io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{spec, TraceGenerator};

    fn sample() -> Trace {
        TraceGenerator::new(spec::benchmark("gcc").unwrap(), 11).generate(5_000)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let trace = sample();
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        let back = read_trace(&bytes[..]).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.total_instructions(), trace.total_instructions());
    }

    #[test]
    fn empty_trace_round_trips() {
        let trace = Trace::new(Vec::new());
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        assert_eq!(read_trace(&bytes[..]).unwrap(), trace);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"PLPT");
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = read_trace(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn rejects_truncation() {
        let trace = sample();
        let mut bytes = Vec::new();
        write_trace(&trace, &mut bytes).unwrap();
        bytes.truncate(bytes.len() - 3);
        let err = read_trace(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn rejects_unknown_kind() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"PLPT");
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(77); // bogus kind
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = read_trace(&bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn file_round_trip() {
        let trace = sample();
        let dir = std::env::temp_dir().join(format!("plp-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.plpt");
        save_trace(&trace, &path).unwrap();
        assert_eq!(load_trace(&path).unwrap(), trace);
        std::fs::remove_dir_all(&dir).ok();
    }
}
