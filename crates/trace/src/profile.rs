//! Workload profiles: the statistical shape of a benchmark's memory
//! behaviour.

use serde::{Deserialize, Serialize};

/// The statistical profile a synthetic trace is generated from.
///
/// The persist-relevant rates come straight from the paper's Table V;
/// the locality knobs (`store_repeat_fraction`, `footprint_pages`,
/// `page_run_len`) are fitted so that the *derived* statistics the
/// paper reports — epoch-store PPKI and write-back PPKI — come out near
/// the published columns. `base_ipc` is the benchmark's baseline
/// (`secure_WB`) instruction throughput; only gamess's 2.45 is quoted
/// in the paper (§VII), the rest are synthesized from typical SPEC2006
/// behaviour and documented in `spec.rs`.
///
/// # Example
///
/// ```
/// use plp_trace::WorkloadProfile;
///
/// let p = WorkloadProfile::builder("custom")
///     .base_ipc(1.0)
///     .store_ppki(100.0, 30.0)
///     .load_ppki(150.0)
///     .locality(0.5, 1024, 8.0)
///     .build();
/// assert_eq!(p.name, "custom");
/// assert!((p.store_ppki_full - 100.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name.
    pub name: String,
    /// Baseline (`secure_WB`) IPC of the core.
    pub base_ipc: f64,
    /// Stores per kilo-instruction, stack included (Table V `sp_full`).
    pub store_ppki_full: f64,
    /// Non-stack stores per kilo-instruction (Table V `sp`).
    pub store_ppki_nonstack: f64,
    /// Loads per kilo-instruction.
    pub load_ppki: f64,
    /// Probability that a non-stack store re-targets a recently stored
    /// block (drives intra-epoch coalescing in the cache).
    pub store_repeat_fraction: f64,
    /// Heap footprint in 4 KiB pages (drives LLC write-back rate).
    pub footprint_pages: u64,
    /// Mean consecutive blocks touched in a page before jumping
    /// (spatial locality; drives LCA depth for coalescing).
    pub page_run_len: f64,
    /// Paper-reported epoch-store PPKI at epoch size 32 (Table V `o3`),
    /// kept for calibration reporting; `None` for custom workloads.
    pub paper_epoch_ppki: Option<f64>,
    /// Paper-reported write-back PPKI (Table V `secure_WB full`); kept
    /// for calibration reporting.
    pub paper_writeback_ppki: Option<f64>,
}

impl WorkloadProfile {
    /// Starts building a custom profile.
    pub fn builder(name: &str) -> WorkloadProfileBuilder {
        WorkloadProfileBuilder::new(name)
    }

    /// Fraction of stores that target the stack segment.
    pub fn stack_store_fraction(&self) -> f64 {
        if self.store_ppki_full <= 0.0 {
            return 0.0;
        }
        1.0 - self.store_ppki_nonstack / self.store_ppki_full
    }
}

/// Builder for [`WorkloadProfile`] (see
/// [`WorkloadProfile::builder`]).
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

impl WorkloadProfileBuilder {
    fn new(name: &str) -> Self {
        WorkloadProfileBuilder {
            profile: WorkloadProfile {
                name: name.to_string(),
                base_ipc: 1.0,
                store_ppki_full: 100.0,
                store_ppki_nonstack: 30.0,
                load_ppki: 150.0,
                store_repeat_fraction: 0.6,
                footprint_pages: 1024,
                page_run_len: 8.0,
                paper_epoch_ppki: None,
                paper_writeback_ppki: None,
            },
        }
    }

    /// Sets the baseline IPC.
    ///
    /// # Panics
    ///
    /// Panics unless `ipc` is positive and finite.
    pub fn base_ipc(mut self, ipc: f64) -> Self {
        assert!(ipc.is_finite() && ipc > 0.0, "IPC must be positive");
        self.profile.base_ipc = ipc;
        self
    }

    /// Sets total and non-stack store rates (per kilo-instruction).
    ///
    /// # Panics
    ///
    /// Panics if `nonstack > full` or either is negative.
    pub fn store_ppki(mut self, full: f64, nonstack: f64) -> Self {
        assert!(
            (0.0..=1000.0).contains(&full) && (0.0..=full).contains(&nonstack),
            "store rates must satisfy 0 <= nonstack <= full <= 1000"
        );
        self.profile.store_ppki_full = full;
        self.profile.store_ppki_nonstack = nonstack;
        self
    }

    /// Sets the load rate (per kilo-instruction).
    ///
    /// # Panics
    ///
    /// Panics if negative or over 1000.
    pub fn load_ppki(mut self, loads: f64) -> Self {
        assert!((0.0..=1000.0).contains(&loads), "load rate out of range");
        self.profile.load_ppki = loads;
        self
    }

    /// Sets the locality knobs: store repeat fraction, heap footprint
    /// in pages and mean page run length.
    ///
    /// # Panics
    ///
    /// Panics if `repeat` is outside `[0, 1]`, footprint is zero, or
    /// `run_len < 1`.
    pub fn locality(mut self, repeat: f64, footprint_pages: u64, run_len: f64) -> Self {
        assert!((0.0..=1.0).contains(&repeat), "repeat fraction in [0,1]");
        assert!(footprint_pages > 0, "footprint must be positive");
        assert!(run_len >= 1.0, "run length must be at least 1");
        self.profile.store_repeat_fraction = repeat;
        self.profile.footprint_pages = footprint_pages;
        self.profile.page_run_len = run_len;
        self
    }

    /// Records the paper's reference statistics for calibration output.
    pub fn paper_reference(mut self, epoch_ppki: f64, writeback_ppki: f64) -> Self {
        self.profile.paper_epoch_ppki = Some(epoch_ppki);
        self.profile.paper_writeback_ppki = Some(writeback_ppki);
        self
    }

    /// Finishes the profile.
    pub fn build(self) -> WorkloadProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_overrides() {
        let p = WorkloadProfile::builder("x").build();
        assert_eq!(p.name, "x");
        assert!(p.paper_epoch_ppki.is_none());

        let q = WorkloadProfile::builder("y")
            .base_ipc(2.0)
            .store_ppki(80.0, 20.0)
            .load_ppki(10.0)
            .locality(0.3, 64, 4.0)
            .paper_reference(5.0, 1.0)
            .build();
        assert_eq!(q.base_ipc, 2.0);
        assert_eq!(q.paper_epoch_ppki, Some(5.0));
        assert!((q.stack_store_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stack_fraction_handles_zero_rate() {
        let mut p = WorkloadProfile::builder("z").build();
        p.store_ppki_full = 0.0;
        assert_eq!(p.stack_store_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonstack <= full")]
    fn builder_validates_store_rates() {
        let _ = WorkloadProfile::builder("bad").store_ppki(10.0, 20.0);
    }

    #[test]
    #[should_panic(expected = "IPC")]
    fn builder_validates_ipc() {
        let _ = WorkloadProfile::builder("bad").base_ipc(0.0);
    }
}
