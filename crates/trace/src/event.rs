//! Trace record types.

use plp_events::addr::BlockAddr;
use serde::{Deserialize, Serialize};

/// A memory operation in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// A load from `addr`.
    Load {
        /// Target block.
        addr: BlockAddr,
    },
    /// A store to `addr`.
    Store {
        /// Target block.
        addr: BlockAddr,
        /// Whether the target is in the stack segment. The paper's
        /// default configuration persists only non-stack stores; `_full`
        /// configurations persist everything (§VI).
        stack: bool,
    },
}

impl Op {
    /// The target block address.
    pub fn addr(self) -> BlockAddr {
        match self {
            Op::Load { addr } | Op::Store { addr, .. } => addr,
        }
    }

    /// Whether this is a store.
    pub fn is_store(self) -> bool {
        matches!(self, Op::Store { .. })
    }

    /// Whether this is a stack store.
    pub fn is_stack_store(self) -> bool {
        matches!(self, Op::Store { stack: true, .. })
    }
}

/// One trace event: a run of non-memory instructions followed by a
/// memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Non-memory instructions retired before `op` issues.
    pub gap_instructions: u32,
    /// The memory operation.
    pub op: Op,
}

/// A complete workload trace.
///
/// # Example
///
/// ```
/// use plp_trace::{Op, Trace, TraceEvent};
/// use plp_events::addr::BlockAddr;
///
/// let t = Trace::new(vec![TraceEvent {
///     gap_instructions: 10,
///     op: Op::Store { addr: BlockAddr::new(1), stack: false },
/// }]);
/// assert_eq!(t.total_instructions(), 11);
/// assert_eq!(t.store_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    total_instructions: u64,
}

impl Trace {
    /// Wraps a list of events (each memory operation counts as one
    /// instruction, plus its gap).
    pub fn new(events: Vec<TraceEvent>) -> Self {
        let total_instructions = events
            .iter()
            .map(|e| e.gap_instructions as u64 + 1)
            .sum();
        Trace {
            events,
            total_instructions,
        }
    }

    /// The events in program order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Iterates over events in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Total instructions, memory operations included.
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Number of memory operations.
    pub fn op_count(&self) -> usize {
        self.events.len()
    }

    /// Number of stores (stack and non-stack).
    pub fn store_count(&self) -> u64 {
        self.events.iter().filter(|e| e.op.is_store()).count() as u64
    }

    /// Number of non-stack stores (the persists under the paper's
    /// default protection scope).
    pub fn nonstack_store_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| e.op.is_store() && !e.op.is_stack_store())
            .count() as u64
    }

    /// Stores per kilo-instruction, the paper's PPKI metric for strict
    /// persistency (`stack_included` selects the `_full` variant).
    pub fn store_ppki(&self, stack_included: bool) -> f64 {
        let stores = if stack_included {
            self.store_count()
        } else {
            self.nonstack_store_count()
        };
        stores as f64 * 1000.0 / self.total_instructions as f64
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(gap: u32, op: Op) -> TraceEvent {
        TraceEvent {
            gap_instructions: gap,
            op,
        }
    }

    #[test]
    fn counts_and_ppki() {
        let t = Trace::new(vec![
            ev(99, Op::Store {
                addr: BlockAddr::new(0),
                stack: false,
            }),
            ev(99, Op::Store {
                addr: BlockAddr::new(1),
                stack: true,
            }),
            ev(99, Op::Load {
                addr: BlockAddr::new(2),
            }),
        ]);
        assert_eq!(t.total_instructions(), 300);
        assert_eq!(t.op_count(), 3);
        assert_eq!(t.store_count(), 2);
        assert_eq!(t.nonstack_store_count(), 1);
        assert!((t.store_ppki(true) - 2.0 / 0.3).abs() < 1e-9);
        assert!((t.store_ppki(false) - 1.0 / 0.3).abs() < 1e-9);
    }

    #[test]
    fn op_helpers() {
        let s = Op::Store {
            addr: BlockAddr::new(3),
            stack: true,
        };
        let l = Op::Load {
            addr: BlockAddr::new(4),
        };
        assert!(s.is_store() && s.is_stack_store());
        assert!(!l.is_store() && !l.is_stack_store());
        assert_eq!(s.addr(), BlockAddr::new(3));
        assert_eq!(l.addr(), BlockAddr::new(4));
    }

    #[test]
    fn iteration() {
        let t = Trace::new(vec![ev(0, Op::Load {
            addr: BlockAddr::new(0),
        })]);
        assert_eq!(t.iter().count(), 1);
        assert_eq!((&t).into_iter().count(), 1);
        assert_eq!(t.events().len(), 1);
    }
}
