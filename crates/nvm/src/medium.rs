//! The sparse functional storage medium.

use std::collections::HashMap;

use plp_events::addr::BlockAddr;
use serde::{Deserialize, Serialize};

/// A sparse functional store mapping block addresses to values of type
/// `V` — the *contents* half of the NVM device (the timing half is
/// [`crate::NvmDevice`]).
///
/// Reads of never-written blocks return `V::default()`, modelling
/// zero-initialized (or fresh-metadata) memory. The crash-recovery
/// machinery clones media to capture persisted images.
///
/// # Example
///
/// ```
/// use plp_events::addr::BlockAddr;
/// use plp_nvm::Medium;
///
/// let mut m: Medium<u64> = Medium::new();
/// let a = BlockAddr::new(9);
/// assert_eq!(m.read(a), 0);
/// m.write(a, 42);
/// assert_eq!(m.read(a), 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Medium<V> {
    cells: HashMap<BlockAddr, V>,
}

impl<V: Default + Clone> Medium<V> {
    /// Creates an empty (all-default) medium.
    pub fn new() -> Self {
        Medium {
            cells: HashMap::new(),
        }
    }

    /// Reads the value at `addr` (default if never written).
    pub fn read(&self, addr: BlockAddr) -> V {
        self.cells.get(&addr).cloned().unwrap_or_default()
    }

    /// Returns a reference to the value at `addr`, if it was ever
    /// written.
    pub fn get(&self, addr: BlockAddr) -> Option<&V> {
        self.cells.get(&addr)
    }

    /// Writes `value` at `addr`.
    pub fn write(&mut self, addr: BlockAddr, value: V) {
        self.cells.insert(addr, value);
    }

    /// Number of explicitly written blocks.
    pub fn written_blocks(&self) -> usize {
        self.cells.len()
    }

    /// Iterates over all written blocks.
    pub fn iter(&self) -> impl Iterator<Item = (&BlockAddr, &V)> {
        self.cells.iter()
    }
}

impl<V: Default + Clone> Default for Medium<V> {
    fn default() -> Self {
        Medium::new()
    }
}

impl<V: Default + Clone> FromIterator<(BlockAddr, V)> for Medium<V> {
    fn from_iter<I: IntoIterator<Item = (BlockAddr, V)>>(iter: I) -> Self {
        Medium {
            cells: iter.into_iter().collect(),
        }
    }
}

impl<V: Default + Clone> Extend<(BlockAddr, V)> for Medium<V> {
    fn extend<I: IntoIterator<Item = (BlockAddr, V)>>(&mut self, iter: I) {
        self.cells.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_default() {
        let m: Medium<u32> = Medium::default();
        assert_eq!(m.read(BlockAddr::new(1)), 0);
        assert_eq!(m.get(BlockAddr::new(1)), None);
        assert_eq!(m.written_blocks(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut m = Medium::new();
        m.write(BlockAddr::new(7), "hello".to_string());
        assert_eq!(m.read(BlockAddr::new(7)), "hello");
        assert_eq!(m.written_blocks(), 1);
        m.write(BlockAddr::new(7), "world".to_string());
        assert_eq!(m.read(BlockAddr::new(7)), "world");
        assert_eq!(m.written_blocks(), 1);
    }

    #[test]
    fn clone_snapshots() {
        let mut m = Medium::new();
        m.write(BlockAddr::new(1), 10u64);
        let snap = m.clone();
        m.write(BlockAddr::new(1), 20);
        assert_eq!(snap.read(BlockAddr::new(1)), 10);
        assert_eq!(m.read(BlockAddr::new(1)), 20);
    }

    #[test]
    fn collect_and_extend() {
        let mut m: Medium<u8> = [(BlockAddr::new(0), 1), (BlockAddr::new(1), 2)]
            .into_iter()
            .collect();
        m.extend([(BlockAddr::new(2), 3)]);
        assert_eq!(m.written_blocks(), 3);
        let mut all: Vec<_> = m.iter().map(|(a, v)| (a.index(), *v)).collect();
        all.sort();
        assert_eq!(all, vec![(0, 1), (1, 2), (2, 3)]);
    }
}
