//! NVM timing parameters (Table III of the paper).

use plp_events::{Cycle, Freq};
use serde::{Deserialize, Serialize};

/// Device timing parameters, in nanoseconds as datasheets (and the
/// paper's Table III) specify them.
///
/// # Example
///
/// ```
/// use plp_nvm::NvmTiming;
/// use plp_events::Freq;
///
/// let t = NvmTiming::paper_default();
/// let cpu = Freq::ghz(4.0);
/// // A row-miss read costs tRCD + tCL + tBURST.
/// assert_eq!(t.read_row_miss_cycles(cpu).get(), 290);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmTiming {
    /// Row-to-column delay (activate), ns.
    pub t_rcd_ns: f64,
    /// Four-activation window, ns (throttles activates).
    pub t_xaw_ns: f64,
    /// Data burst time, ns.
    pub t_burst_ns: f64,
    /// Write recovery (PCM write service), ns.
    pub t_wr_ns: f64,
    /// Refresh (negligible for PCM), ns.
    pub t_rfc_ns: f64,
    /// CAS latency, ns.
    pub t_cl_ns: f64,
}

impl NvmTiming {
    /// Table III: tRCD/tXAW/tBURST/tWR/tRFC/tCL =
    /// 55/50/5/150/5/12.5 ns.
    pub fn paper_default() -> Self {
        NvmTiming {
            t_rcd_ns: 55.0,
            t_xaw_ns: 50.0,
            t_burst_ns: 5.0,
            t_wr_ns: 150.0,
            t_rfc_ns: 5.0,
            t_cl_ns: 12.5,
        }
    }

    /// Read latency when the row buffer misses: activate + CAS + burst.
    pub fn read_row_miss_cycles(&self, cpu: Freq) -> Cycle {
        cpu.cycles_for_ns(self.t_rcd_ns + self.t_cl_ns + self.t_burst_ns)
    }

    /// Read latency when the row buffer hits: CAS + burst.
    pub fn read_row_hit_cycles(&self, cpu: Freq) -> Cycle {
        cpu.cycles_for_ns(self.t_cl_ns + self.t_burst_ns)
    }

    /// Write service time occupying the bank (write recovery).
    pub fn write_cycles(&self, cpu: Freq) -> Cycle {
        cpu.cycles_for_ns(self.t_wr_ns)
    }
}

impl Default for NvmTiming {
    fn default() -> Self {
        NvmTiming::paper_default()
    }
}

/// How block addresses map to banks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interleave {
    /// Consecutive 64-byte blocks rotate across banks (cache-line
    /// interleaving). Spatially local store streams spread over all
    /// banks, which is what makes write-through persistency viable at
    /// all — the paper's evaluation implicitly assumes this (its SP
    /// bottleneck is the BMT walk, not a single PCM bank).
    #[default]
    BlockLevel,
    /// A whole row lives in one bank (row interleaving): maximizes row
    /// buffer hits for sequential reads but serializes local write
    /// streams on one bank.
    RowLevel,
}

/// Overall device configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmConfig {
    /// Device capacity in bytes (Table III: 8 GB).
    pub capacity_bytes: u64,
    /// Number of banks.
    pub banks: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Read queue capacity (Table III: 64).
    pub read_queue: usize,
    /// Write queue capacity (Table III: 128).
    pub write_queue: usize,
    /// Timing parameters.
    pub timing: NvmTiming,
    /// CPU frequency used to express completions in CPU cycles.
    pub cpu_freq: Freq,
    /// Address-to-bank mapping.
    pub interleave: Interleave,
}

impl NvmConfig {
    /// The paper's device: 8 GB, 16 banks, 8 KB rows, 64/128-entry
    /// read/write queues, Table III timings, 4 GHz CPU clock domain.
    pub fn paper_default() -> Self {
        NvmConfig {
            capacity_bytes: 8 << 30,
            banks: 16,
            row_bytes: 8 << 10,
            read_queue: 64,
            write_queue: 128,
            timing: NvmTiming::paper_default(),
            cpu_freq: Freq::ghz(4.0),
            interleave: Interleave::BlockLevel,
        }
    }
}

impl Default for NvmConfig {
    fn default() -> Self {
        NvmConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latencies_at_4ghz() {
        let t = NvmTiming::paper_default();
        let cpu = Freq::ghz(4.0);
        assert_eq!(t.read_row_miss_cycles(cpu).get(), 290); // 72.5 ns
        assert_eq!(t.read_row_hit_cycles(cpu).get(), 70); // 17.5 ns
        assert_eq!(t.write_cycles(cpu).get(), 600); // 150 ns
    }

    #[test]
    fn default_config_matches_table3() {
        let c = NvmConfig::default();
        assert_eq!(c.capacity_bytes, 8 << 30);
        assert_eq!(c.read_queue, 64);
        assert_eq!(c.write_queue, 128);
        assert_eq!(c.timing, NvmTiming::default());
    }
}
