//! NVM timing parameters (Table III of the paper).

use plp_events::{Cycle, Freq};
use serde::{Deserialize, Serialize};

/// Device timing parameters, in nanoseconds as datasheets (and the
/// paper's Table III) specify them.
///
/// # Example
///
/// ```
/// use plp_nvm::NvmTiming;
/// use plp_events::Freq;
///
/// let t = NvmTiming::paper_default();
/// let cpu = Freq::ghz(4.0);
/// // A row-miss read costs tRCD + tCL + tBURST.
/// assert_eq!(t.read_row_miss_cycles(cpu).get(), 290);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmTiming {
    /// Row-to-column delay (activate), ns.
    pub t_rcd_ns: f64,
    /// Four-activation window, ns (throttles activates).
    pub t_xaw_ns: f64,
    /// Data burst time, ns.
    pub t_burst_ns: f64,
    /// Write recovery (PCM write service), ns.
    pub t_wr_ns: f64,
    /// Refresh (negligible for PCM), ns.
    pub t_rfc_ns: f64,
    /// CAS latency, ns.
    pub t_cl_ns: f64,
}

impl NvmTiming {
    /// Table III: tRCD/tXAW/tBURST/tWR/tRFC/tCL =
    /// 55/50/5/150/5/12.5 ns.
    pub fn paper_default() -> Self {
        NvmTiming {
            t_rcd_ns: 55.0,
            t_xaw_ns: 50.0,
            t_burst_ns: 5.0,
            t_wr_ns: 150.0,
            t_rfc_ns: 5.0,
            t_cl_ns: 12.5,
        }
    }

    /// Read latency when the row buffer misses: activate + CAS + burst.
    pub fn read_row_miss_cycles(&self, cpu: Freq) -> Cycle {
        cpu.cycles_for_ns(self.t_rcd_ns + self.t_cl_ns + self.t_burst_ns)
    }

    /// Read latency when the row buffer hits: CAS + burst.
    pub fn read_row_hit_cycles(&self, cpu: Freq) -> Cycle {
        cpu.cycles_for_ns(self.t_cl_ns + self.t_burst_ns)
    }

    /// Write service time occupying the bank (write recovery).
    pub fn write_cycles(&self, cpu: Freq) -> Cycle {
        cpu.cycles_for_ns(self.t_wr_ns)
    }
}

impl Default for NvmTiming {
    fn default() -> Self {
        NvmTiming::paper_default()
    }
}

/// How block addresses map to banks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Interleave {
    /// Consecutive 64-byte blocks rotate across banks (cache-line
    /// interleaving). Spatially local store streams spread over all
    /// banks, which is what makes write-through persistency viable at
    /// all — the paper's evaluation implicitly assumes this (its SP
    /// bottleneck is the BMT walk, not a single PCM bank).
    #[default]
    BlockLevel,
    /// A whole row lives in one bank (row interleaving): maximizes row
    /// buffer hits for sequential reads but serializes local write
    /// streams on one bank.
    RowLevel,
}

/// Deterministic transient-read-fault model: each read attempt fails
/// independently with `fault_probability`; the controller retries up to
/// `max_retries` times, paying `retry_backoff_ns` plus a re-read per
/// retry. Reads that exhaust the budget are counted as unrecovered
/// device read failures ([`crate::NvmStats::read_failures`]) — the
/// media returned ECC-flagged garbage and upstream integrity checks
/// must catch it.
///
/// The fault stream is a pure function of `seed` and the read order, so
/// runs are replayable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadFaultConfig {
    /// Per-attempt failure probability in `[0, 1]`. Zero disables the
    /// model entirely (the default).
    pub fault_probability: f64,
    /// Retry budget after the initial failed attempt.
    pub max_retries: u32,
    /// Controller back-off before each retry, in nanoseconds.
    pub retry_backoff_ns: f64,
    /// Seed of the fault stream.
    pub seed: u64,
}

impl ReadFaultConfig {
    /// The model switched off: no read ever faults.
    pub fn disabled() -> Self {
        ReadFaultConfig {
            fault_probability: 0.0,
            max_retries: 0,
            retry_backoff_ns: 0.0,
            seed: 0,
        }
    }

    /// A fault model with the given per-attempt probability, three
    /// retries and a 100 ns back-off.
    pub fn with_probability(probability: f64, seed: u64) -> Self {
        ReadFaultConfig {
            fault_probability: probability,
            max_retries: 3,
            retry_backoff_ns: 100.0,
            seed,
        }
    }

    /// Whether any read can fault under this configuration.
    pub fn is_enabled(&self) -> bool {
        self.fault_probability > 0.0
    }

    /// The controller's backoff as the shared workspace policy
    /// (`plp_core::retry`): a constant, jitter-free schedule of
    /// `max_retries` waits of `retry_backoff_ns` each. Keeping the
    /// configuration surface as two plain numbers and deriving the
    /// policy here means the device and the harness retry through one
    /// implementation without changing this struct's (cache-keyed)
    /// shape.
    pub fn retry_policy(&self) -> plp_events::retry::RetryPolicy {
        plp_events::retry::RetryPolicy::constant(self.max_retries, self.retry_backoff_ns)
    }
}

impl Default for ReadFaultConfig {
    fn default() -> Self {
        ReadFaultConfig::disabled()
    }
}

/// Overall device configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmConfig {
    /// Device capacity in bytes (Table III: 8 GB).
    pub capacity_bytes: u64,
    /// Number of banks.
    pub banks: usize,
    /// Row-buffer size in bytes.
    pub row_bytes: u64,
    /// Read queue capacity (Table III: 64).
    pub read_queue: usize,
    /// Write queue capacity (Table III: 128).
    pub write_queue: usize,
    /// Timing parameters.
    pub timing: NvmTiming,
    /// CPU frequency used to express completions in CPU cycles.
    pub cpu_freq: Freq,
    /// Address-to-bank mapping.
    pub interleave: Interleave,
    /// Transient-read-fault injection (disabled by default).
    pub read_fault: ReadFaultConfig,
}

impl NvmConfig {
    /// The paper's device: 8 GB, 16 banks, 8 KB rows, 64/128-entry
    /// read/write queues, Table III timings, 4 GHz CPU clock domain.
    pub fn paper_default() -> Self {
        NvmConfig {
            capacity_bytes: 8 << 30,
            banks: 16,
            row_bytes: 8 << 10,
            read_queue: 64,
            write_queue: 128,
            timing: NvmTiming::paper_default(),
            cpu_freq: Freq::ghz(4.0),
            interleave: Interleave::BlockLevel,
            read_fault: ReadFaultConfig::disabled(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), NvmError> {
        if self.banks == 0 {
            return Err(NvmError::ZeroBanks);
        }
        if self.read_queue == 0 {
            return Err(NvmError::ZeroQueue { queue: "read" });
        }
        if self.write_queue == 0 {
            return Err(NvmError::ZeroQueue { queue: "write" });
        }
        let block = plp_events::addr::CACHE_BLOCK_SIZE as u64;
        if self.row_bytes < block || !self.row_bytes.is_multiple_of(block) {
            return Err(NvmError::BadRowBytes {
                row_bytes: self.row_bytes,
            });
        }
        if self.capacity_bytes < self.row_bytes {
            return Err(NvmError::BadCapacity {
                capacity_bytes: self.capacity_bytes,
            });
        }
        let p = self.read_fault.fault_probability;
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return Err(NvmError::BadFaultProbability { probability: p });
        }
        Ok(())
    }
}

/// Why an [`NvmConfig`] was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NvmError {
    /// The device must have at least one bank.
    ZeroBanks,
    /// A command queue must admit at least one command.
    ZeroQueue {
        /// Which queue ("read" or "write").
        queue: &'static str,
    },
    /// Rows must hold a whole number of cache blocks.
    BadRowBytes {
        /// The rejected row size.
        row_bytes: u64,
    },
    /// The device must hold at least one row.
    BadCapacity {
        /// The rejected capacity.
        capacity_bytes: u64,
    },
    /// Fault probabilities live in `[0, 1]`.
    BadFaultProbability {
        /// The rejected probability.
        probability: f64,
    },
    /// An I/O operation on a file-backed image failed.
    ImageIo {
        /// Which operation ("create", "write", "read", "sync", "remove").
        op: &'static str,
    },
    /// The image file is shorter than a full header.
    ImageHeaderTruncated {
        /// Actual file length in bytes.
        len: u64,
    },
    /// The image header does not start with the `PLPNVM1\0` magic.
    ImageBadMagic,
    /// The image header carries an unsupported format version.
    ImageBadVersion {
        /// The rejected version.
        version: u32,
    },
    /// The image header fails its checksum or field validation — a torn
    /// or corrupted header, distinct from a merely truncated file.
    ImageHeaderCorrupt,
}

impl std::fmt::Display for NvmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NvmError::ZeroBanks => write!(f, "NVM device needs at least one bank"),
            NvmError::ZeroQueue { queue } => {
                write!(f, "NVM {queue} queue needs at least one entry")
            }
            NvmError::BadRowBytes { row_bytes } => write!(
                f,
                "NVM row size {row_bytes} must be a positive multiple of the cache block size"
            ),
            NvmError::BadCapacity { capacity_bytes } => {
                write!(f, "NVM capacity {capacity_bytes} is below one row")
            }
            NvmError::BadFaultProbability { probability } => {
                write!(f, "read-fault probability {probability} outside [0, 1]")
            }
            NvmError::ImageIo { op } => {
                write!(f, "image file {op} failed")
            }
            NvmError::ImageHeaderTruncated { len } => {
                write!(f, "image file too short for a header ({len} bytes)")
            }
            NvmError::ImageBadMagic => write!(f, "image file lacks the PLPNVM1 magic"),
            NvmError::ImageBadVersion { version } => {
                write!(f, "image format version {version} is not supported")
            }
            NvmError::ImageHeaderCorrupt => {
                write!(f, "image header failed checksum or field validation")
            }
        }
    }
}

impl std::error::Error for NvmError {}

impl Default for NvmConfig {
    fn default() -> Self {
        NvmConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_latencies_at_4ghz() {
        let t = NvmTiming::paper_default();
        let cpu = Freq::ghz(4.0);
        assert_eq!(t.read_row_miss_cycles(cpu).get(), 290); // 72.5 ns
        assert_eq!(t.read_row_hit_cycles(cpu).get(), 70); // 17.5 ns
        assert_eq!(t.write_cycles(cpu).get(), 600); // 150 ns
    }

    #[test]
    fn default_config_matches_table3() {
        let c = NvmConfig::default();
        assert_eq!(c.capacity_bytes, 8 << 30);
        assert_eq!(c.read_queue, 64);
        assert_eq!(c.write_queue, 128);
        assert_eq!(c.timing, NvmTiming::default());
    }
}
