//! The non-volatile main memory device model.
//!
//! Two halves, mirroring how the paper's evaluation treats memory:
//!
//! * [`NvmDevice`] — *timing*: banks with row buffers, Table III PCM
//!   parameters (tRCD/tXAW/tBURST/tWR/tRFC/tCL = 55/50/5/150/5/12.5 ns),
//!   64-entry read and 128-entry write queues with admission
//!   back-pressure, completions expressed in CPU cycles at 4 GHz;
//! * [`Medium`] — *contents*: a sparse functional store so the
//!   crash-recovery machinery can snapshot exactly what was durable.
//!
//! # Example
//!
//! ```
//! use plp_events::{addr::BlockAddr, Cycle};
//! use plp_nvm::{Medium, NvmConfig, NvmDevice};
//!
//! let mut timing = NvmDevice::new(NvmConfig::paper_default());
//! let mut contents: Medium<u64> = Medium::new();
//!
//! let addr = BlockAddr::new(42);
//! let durable_at = timing.write(Cycle::ZERO, addr);
//! contents.write(addr, 7);
//! assert!(durable_at > Cycle::ZERO);
//! assert_eq!(contents.read(addr), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
pub mod image;
mod medium;
mod timing;

pub use device::{NvmDevice, NvmStats};
pub use image::{read_image, ImageContents, ImageHeader, ImageRecord, ImageWriter};
pub use medium::Medium;
pub use timing::{Interleave, NvmConfig, NvmError, NvmTiming, ReadFaultConfig};
