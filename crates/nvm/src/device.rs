//! The bank/row timing model of the NVM device.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use plp_events::addr::BlockAddr;
use plp_events::Cycle;
use serde::{Deserialize, Serialize};

use crate::{NvmConfig, NvmError};

/// Statistics reported by the device.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NvmStats {
    /// Read commands serviced.
    pub reads: u64,
    /// Write commands serviced.
    pub writes: u64,
    /// Writes absorbed by an already-pending write to the same block
    /// (write combining in the write queue).
    pub writes_combined: u64,
    /// Reads that hit an open row buffer.
    pub row_hits: u64,
    /// Reads that had to activate a row.
    pub row_misses: u64,
    /// Cycles accesses spent waiting for a full read/write queue.
    pub queue_stall_cycles: u64,
    /// Read attempts that transiently faulted and were retried (see
    /// [`crate::ReadFaultConfig`]).
    pub read_retries: u64,
    /// Reads whose retry budget was exhausted: the device delivered
    /// unreliable data and upstream integrity checks must catch it.
    pub read_failures: u64,
}

/// One splitmix64 step — the device's replayable fault stream.
fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws a fault with probability `p` from the stream.
fn fault_roll(state: &mut u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    let unit = (splitmix_next(state) >> 11) as f64 / (1u64 << 53) as f64;
    unit < p
}

/// One bank's schedule: non-overlapping busy reservations.
///
/// Requests do not arrive in time order — the security engine books
/// fetches at gated *future* times while the core issues loads at the
/// current clock — so a scalar `busy_until` would let a future write
/// block an earlier read. Instead each bank keeps its reservations and
/// a new request takes the earliest gap at or after its own time, which
/// also gives reads natural priority over queued future writes.
#[derive(Debug, Clone, Default)]
struct Bank {
    /// start -> end of each reservation, non-overlapping.
    reservations: std::collections::BTreeMap<u64, u64>,
    /// Chronologically last access's row (row-buffer state).
    open_row: Option<u64>,
    /// End of the chronologically last reservation.
    latest_end: u64,
}

impl Bank {
    /// Books `len` busy cycles at the earliest gap at or after `now`;
    /// returns the start time.
    fn reserve(&mut self, now: u64, len: u64) -> u64 {
        let mut candidate = now;
        // A reservation already covering `candidate` pushes it to its
        // end.
        if let Some((_, &e)) = self.reservations.range(..=candidate).next_back() {
            if e > candidate {
                candidate = e;
            }
        }
        // Walk later reservations until a large-enough gap appears.
        for (&s, &e) in self.reservations.range(candidate..) {
            if s >= candidate + len {
                break;
            }
            candidate = candidate.max(e);
        }
        self.reservations.insert(candidate, candidate + len);
        // Bounded memory: drop reservations far behind the schedule
        // frontier (no future request plausibly lands there).
        if self.reservations.len() > 1024 {
            let horizon = self.latest_end.saturating_sub(2_000_000);
            self.reservations.retain(|_, &mut e| e >= horizon);
        }
        candidate
    }
}

/// Tracks in-flight commands against a queue capacity: a new command
/// may only be admitted once fewer than `capacity` are outstanding.
#[derive(Debug, Clone, Default)]
struct OutstandingSet {
    completions: BinaryHeap<Reverse<u64>>,
    capacity: usize,
}

impl OutstandingSet {
    fn new(capacity: usize) -> Self {
        OutstandingSet {
            completions: BinaryHeap::new(),
            capacity,
        }
    }

    /// Earliest time at or after `now` when a slot is free.
    fn admission_time(&mut self, now: Cycle) -> Cycle {
        while let Some(&Reverse(t)) = self.completions.peek() {
            if Cycle::new(t) <= now {
                self.completions.pop();
            } else {
                break;
            }
        }
        if self.completions.len() < self.capacity {
            now
        } else {
            // A zero-capacity queue (rejected by NvmConfig::validate,
            // but kept total here) degenerates to immediate admission.
            match self.completions.pop() {
                Some(Reverse(t)) => Cycle::new(t),
                None => now,
            }
        }
    }

    fn record(&mut self, completion: Cycle) {
        self.completions.push(Reverse(completion.get()));
    }
}

/// The NVM device timing model: banks with row buffers, read priority
/// via separate read/write queues, and per-command completion times in
/// CPU cycles.
///
/// # Example
///
/// ```
/// use plp_events::{addr::BlockAddr, Cycle};
/// use plp_nvm::{NvmConfig, NvmDevice};
///
/// let mut nvm = NvmDevice::new(NvmConfig::paper_default());
/// let a = BlockAddr::new(0);
/// let first = nvm.read(Cycle::ZERO, a);
/// // A second read to the same block hits its open row: cheaper.
/// let second = nvm.read(first, a);
/// assert!(second - first < first - Cycle::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct NvmDevice {
    config: NvmConfig,
    banks: Vec<Bank>,
    reads: OutstandingSet,
    writes: OutstandingSet,
    /// Pending (not yet durable) writes, for write combining.
    pending_writes: std::collections::HashMap<BlockAddr, Cycle>,
    /// Splitmix64 state of the transient-read-fault stream.
    fault_rng: u64,
    stats: NvmStats,
}

impl NvmDevice {
    /// Creates an idle device.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`NvmDevice::try_new`] to handle the error instead.
    pub fn new(config: NvmConfig) -> Self {
        match Self::try_new(config) {
            Ok(device) => device,
            // lint: allow(no-panic-lib) documented panic contract; try_new is the fallible path
            Err(e) => panic!("invalid NVM configuration: {e}"),
        }
    }

    /// Creates an idle device, validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first constraint the configuration violates.
    pub fn try_new(config: NvmConfig) -> Result<Self, NvmError> {
        config.validate()?;
        Ok(NvmDevice {
            banks: vec![Bank::default(); config.banks],
            reads: OutstandingSet::new(config.read_queue),
            writes: OutstandingSet::new(config.write_queue),
            pending_writes: std::collections::HashMap::new(),
            fault_rng: config.read_fault.seed ^ 0x4E56_4D5F_4641_554C,
            config,
            stats: NvmStats::default(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &NvmConfig {
        &self.config
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> NvmStats {
        self.stats
    }

    /// Maps a block address to `(bank, row-within-bank)` according to
    /// the configured interleaving.
    fn map(&self, addr: BlockAddr) -> (usize, u64) {
        let banks = self.config.banks as u64;
        let blocks_per_row = self.config.row_bytes / plp_events::addr::CACHE_BLOCK_SIZE as u64;
        match self.config.interleave {
            crate::Interleave::RowLevel => {
                let row = addr.index() / blocks_per_row;
                ((row % banks) as usize, row)
            }
            crate::Interleave::BlockLevel => {
                let bank = (addr.index() % banks) as usize;
                let row = (addr.index() / banks) / blocks_per_row;
                (bank, row)
            }
        }
    }

    /// Issues a read for `addr` at `now`; returns the cycle the data is
    /// available on chip.
    pub fn read(&mut self, now: Cycle, addr: BlockAddr) -> Cycle {
        let admitted = self.reads.admission_time(now);
        self.stats.queue_stall_cycles += (admitted - now).get();
        let (bank_idx, row) = self.map(addr);
        let bank = &mut self.banks[bank_idx];
        let latency = if bank.open_row == Some(row) {
            self.stats.row_hits += 1;
            self.config.timing.read_row_hit_cycles(self.config.cpu_freq)
        } else {
            self.stats.row_misses += 1;
            self.config
                .timing
                .read_row_miss_cycles(self.config.cpu_freq)
        };
        let start = bank.reserve(admitted.get(), latency.get());
        let mut done = Cycle::new(start) + latency;
        // Transient read faults: each attempt fails independently; the
        // controller backs off through the shared retry policy and
        // re-reads (the row is open by then) until it succeeds or the
        // retry budget runs out.
        let fault = &self.config.read_fault;
        if fault.is_enabled() {
            let p = fault.fault_probability;
            let policy = fault.retry_policy();
            let token = plp_events::retry::RetryToken::new(fault.seed);
            let retry_latency = self.config.timing.read_row_hit_cycles(self.config.cpu_freq);
            let mut failed = fault_roll(&mut self.fault_rng, p);
            let mut attempt = 0;
            while failed && attempt < policy.max_retries {
                attempt += 1;
                self.stats.read_retries += 1;
                let backoff = self
                    .config
                    .cpu_freq
                    .cycles_for_ns(policy.delay_ns(token, attempt));
                let retry_start = bank.reserve((done + backoff).get(), retry_latency.get());
                done = Cycle::new(retry_start) + retry_latency;
                failed = fault_roll(&mut self.fault_rng, p);
            }
            if failed {
                self.stats.read_failures += 1;
            }
        }
        if done.get() >= bank.latest_end {
            bank.latest_end = done.get();
            bank.open_row = Some(row);
        }
        self.stats.reads += 1;
        self.reads.record(done);
        done
    }

    /// Issues a (posted) write for `addr` at `now`; returns the cycle
    /// the write is durable in the medium. The caller decides whether
    /// anything waits for this completion (ADR means stores usually do
    /// not, but the write-queue capacity still throttles).
    pub fn write(&mut self, now: Cycle, addr: BlockAddr) -> Cycle {
        // Write combining: a store to a block that already has a write
        // pending in the queue merges into it (the queue holds the
        // freshest data; one media write suffices).
        if let Some(&done) = self.pending_writes.get(&addr) {
            if done > now {
                self.stats.writes_combined += 1;
                return done;
            }
        }
        let admitted = self.writes.admission_time(now);
        self.stats.queue_stall_cycles += (admitted - now).get();
        let (bank_idx, row) = self.map(addr);
        let bank = &mut self.banks[bank_idx];
        let latency = self.config.timing.write_cycles(self.config.cpu_freq);
        let start = bank.reserve(admitted.get(), latency.get());
        let done = Cycle::new(start) + latency;
        if done.get() >= bank.latest_end {
            bank.latest_end = done.get();
            bank.open_row = Some(row);
        }
        self.stats.writes += 1;
        self.writes.record(done);
        if self.pending_writes.len() >= 4 * self.config.write_queue {
            self.pending_writes.retain(|_, &mut d| d > now);
        }
        self.pending_writes.insert(addr, done);
        done
    }

    /// The earliest cycle at which every issued command has completed —
    /// the device-drained condition used at simulation end and at
    /// crash points (ADR flushes the queues on power failure).
    pub fn drained_at(&self) -> Cycle {
        self.banks
            .iter()
            .map(|b| Cycle::new(b.latest_end))
            .fold(Cycle::ZERO, Cycle::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> NvmDevice {
        // Row-level interleaving keeps the bank/row arithmetic of these
        // tests easy to reason about.
        NvmDevice::new(NvmConfig {
            interleave: crate::Interleave::RowLevel,
            ..NvmConfig::paper_default()
        })
    }

    #[test]
    fn row_hit_is_cheaper_than_miss() {
        let mut d = dev();
        let t1 = d.read(Cycle::ZERO, BlockAddr::new(0));
        assert_eq!(t1.get(), 290);
        // Same row (blocks 0..127 share the 8 KB row).
        let t2 = d.read(t1, BlockAddr::new(1));
        assert_eq!((t2 - t1).get(), 70);
        assert_eq!(d.stats().row_hits, 1);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = dev();
        // Rows 0 and 1 live in banks 0 and 1: both reads complete at
        // the row-miss latency with no serialization.
        let t1 = d.read(Cycle::ZERO, BlockAddr::new(0));
        let t2 = d.read(Cycle::ZERO, BlockAddr::new(128)); // next row
        assert_eq!(t1.get(), 290);
        assert_eq!(t2.get(), 290);
    }

    #[test]
    fn same_bank_serializes() {
        let mut d = dev();
        // Rows 0 and 16 both map to bank 0 (16 banks).
        let t1 = d.read(Cycle::ZERO, BlockAddr::new(0));
        let t2 = d.read(Cycle::ZERO, BlockAddr::new(16 * 128));
        assert_eq!(t2.get(), 290 + 290, "row conflict must serialize");
        assert!(t2 > t1);
    }

    #[test]
    fn writes_occupy_banks() {
        let mut d = dev();
        let w = d.write(Cycle::ZERO, BlockAddr::new(0));
        assert_eq!(w.get(), 600);
        // A read to the same bank waits for write recovery.
        let r = d.read(Cycle::ZERO, BlockAddr::new(1));
        assert_eq!(r.get(), 600 + 70); // row already open after write
    }

    #[test]
    fn write_queue_throttles() {
        let mut d = NvmDevice::new(NvmConfig {
            write_queue: 2,
            banks: 1,
            ..NvmConfig::paper_default()
        });
        let t1 = d.write(Cycle::ZERO, BlockAddr::new(0));
        let _t2 = d.write(Cycle::ZERO, BlockAddr::new(1));
        // Third write must wait for the first to complete before it is
        // even admitted to the queue.
        let t3 = d.write(Cycle::ZERO, BlockAddr::new(2));
        assert!(t3 >= t1 + Cycle::new(600));
        assert!(d.stats().queue_stall_cycles > 0);
    }

    #[test]
    fn repeated_writes_to_one_block_combine() {
        let mut d = dev();
        let a = BlockAddr::new(7);
        let t1 = d.write(Cycle::ZERO, a);
        // While the first write is still pending, rewrites merge.
        let t2 = d.write(Cycle::new(10), a);
        assert_eq!(t2, t1);
        assert_eq!(d.stats().writes, 1);
        assert_eq!(d.stats().writes_combined, 1);
        // After it drains, a new write schedules normally.
        let t3 = d.write(t1, a);
        assert!(t3 > t1);
        assert_eq!(d.stats().writes, 2);
    }

    #[test]
    fn block_interleave_spreads_sequential_stream() {
        let mut d = NvmDevice::new(NvmConfig::paper_default()); // block-level
        // 16 consecutive blocks land on 16 different banks: all
        // complete at one write latency instead of serializing.
        let mut worst = Cycle::ZERO;
        for i in 0..16 {
            worst = worst.max(d.write(Cycle::ZERO, BlockAddr::new(i)));
        }
        assert_eq!(worst, Cycle::new(600));
        // The 17th block wraps to bank 0 and waits.
        assert_eq!(d.write(Cycle::ZERO, BlockAddr::new(16)), Cycle::new(1200));
    }

    #[test]
    fn drained_at_tracks_latest() {
        let mut d = dev();
        let t = d.write(Cycle::ZERO, BlockAddr::new(0));
        assert_eq!(d.drained_at(), t);
        let t2 = d.write(Cycle::ZERO, BlockAddr::new(5000));
        assert_eq!(d.drained_at(), t.max(t2));
    }

    #[test]
    fn try_new_rejects_degenerate_configs() {
        let zero_banks = NvmConfig {
            banks: 0,
            ..NvmConfig::paper_default()
        };
        assert_eq!(NvmDevice::try_new(zero_banks).unwrap_err(), NvmError::ZeroBanks);
        let zero_queue = NvmConfig {
            read_queue: 0,
            ..NvmConfig::paper_default()
        };
        assert!(matches!(
            NvmDevice::try_new(zero_queue).unwrap_err(),
            NvmError::ZeroQueue { queue: "read" }
        ));
        let bad_prob = NvmConfig {
            read_fault: crate::ReadFaultConfig::with_probability(1.5, 0),
            ..NvmConfig::paper_default()
        };
        assert!(matches!(
            NvmDevice::try_new(bad_prob).unwrap_err(),
            NvmError::BadFaultProbability { .. }
        ));
        assert!(NvmDevice::try_new(NvmConfig::paper_default()).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid NVM configuration")]
    fn new_panics_with_descriptive_message() {
        let _ = NvmDevice::new(NvmConfig {
            banks: 0,
            ..NvmConfig::paper_default()
        });
    }

    #[test]
    fn read_faults_retry_with_backoff() {
        let mut faulty = NvmDevice::new(NvmConfig {
            read_fault: crate::ReadFaultConfig {
                fault_probability: 1.0,
                max_retries: 3,
                retry_backoff_ns: 100.0,
                seed: 42,
            },
            ..NvmConfig::paper_default()
        });
        let mut clean = NvmDevice::new(NvmConfig::paper_default());
        let slow = faulty.read(Cycle::ZERO, BlockAddr::new(0));
        let fast = clean.read(Cycle::ZERO, BlockAddr::new(0));
        // Every attempt fails: the full retry budget is spent and the
        // read still counts as a device failure.
        assert_eq!(faulty.stats().read_retries, 3);
        assert_eq!(faulty.stats().read_failures, 1);
        // Each retry costs at least the back-off plus a re-read.
        assert!(slow >= fast + Cycle::new(3 * (400 + 70)), "{slow} vs {fast}");
    }

    #[test]
    fn retry_backoff_timing_is_pinned_to_pre_policy_behaviour() {
        // Regression pin for the plp_core::retry unification: the
        // device used ad-hoc constants (a flat retry_backoff_ns wait
        // per retry); the shared RetryPolicy::constant must reproduce
        // that schedule cycle-for-cycle. With every attempt failing:
        // initial row-miss read completes at 290; each of the 3 retries
        // waits 100 ns (400 cycles at 4 GHz) then re-reads the open row
        // (70 cycles): 290 + 3 * (400 + 70) = 1700.
        let mut faulty = NvmDevice::new(NvmConfig {
            read_fault: crate::ReadFaultConfig {
                fault_probability: 1.0,
                max_retries: 3,
                retry_backoff_ns: 100.0,
                seed: 42,
            },
            ..NvmConfig::paper_default()
        });
        let done = faulty.read(Cycle::ZERO, BlockAddr::new(0));
        assert_eq!(done.get(), 1700);
        // And the derived policy itself is the flat legacy schedule.
        let policy = faulty.config().read_fault.retry_policy();
        let token = plp_events::retry::RetryToken::new(42);
        assert_eq!(policy.schedule(token), vec![100.0, 100.0, 100.0]);
    }

    #[test]
    fn read_fault_stream_is_replayable() {
        let config = NvmConfig {
            read_fault: crate::ReadFaultConfig::with_probability(0.3, 7),
            ..NvmConfig::paper_default()
        };
        let mut a = NvmDevice::new(config);
        let mut b = NvmDevice::new(config);
        for i in 0..200 {
            let t1 = a.read(Cycle::new(i * 10), BlockAddr::new(i % 40));
            let t2 = b.read(Cycle::new(i * 10), BlockAddr::new(i % 40));
            assert_eq!(t1, t2);
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().read_retries > 0, "p=0.3 over 200 reads must retry");
    }

    #[test]
    fn disabled_fault_model_changes_nothing() {
        let mut d = dev();
        let t = d.read(Cycle::ZERO, BlockAddr::new(0));
        assert_eq!(t.get(), 290);
        assert_eq!(d.stats().read_retries, 0);
        assert_eq!(d.stats().read_failures, 0);
    }

    #[test]
    fn stats_count_commands() {
        let mut d = dev();
        d.read(Cycle::ZERO, BlockAddr::new(0));
        d.write(Cycle::ZERO, BlockAddr::new(0));
        d.write(Cycle::ZERO, BlockAddr::new(1));
        let s = d.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 2);
    }
}
