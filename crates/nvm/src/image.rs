//! File-backed persistent device images.
//!
//! The in-memory [`crate::Medium`] dies with the process that owns it,
//! which is exactly the property the real-process crash harness needs
//! to *remove*: a simulation that is SIGKILLed must leave behind a
//! device image the parent can reopen and recover. This module is the
//! durable half of that seam — an append-only, write-through file
//! format mirroring the persist stream.
//!
//! The crash model is **process death**, not power loss: once
//! `write(2)` has returned, the bytes live in the kernel page cache
//! and survive a SIGKILL of the writer, so the writer needs no fsync
//! on the hot path ([`ImageWriter::sync`] exists for callers that also
//! want the power-loss guarantee).
//!
//! # Layout
//!
//! ```text
//! [ 64-byte header ][ frame ][ frame ] ... [ possibly torn tail ]
//! ```
//!
//! Header (all integers little-endian):
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 8    | magic `PLPNVM1\0` |
//! | 8      | 4    | format version (currently 1) |
//! | 12     | 4    | tree levels |
//! | 16     | 8    | tree arity |
//! | 24     | 8    | trace seed |
//! | 32     | 1    | scheme-name length |
//! | 33     | 23   | scheme name, zero-padded |
//! | 56     | 8    | FNV-1a 64 checksum of bytes 0..56 |
//!
//! Each frame is `[tag u8][len u32][payload][fnv u64]` where the
//! checksum covers the tag, the length bytes, and the payload. Frame
//! payloads are opaque here — `plp_core` defines the tags for tuple
//! components, root seals, and epoch seals.
//!
//! Readers tolerate a torn *tail* (a frame cut short or failing its
//! checksum, i.e. the write the kill landed on): everything from the
//! first bad frame onward is discarded and reported, never an error.
//! A corrupt *header* is an error — the image is unusable — reported
//! as a typed [`NvmError`], never a panic.

use std::fs::File;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use crate::NvmError;

/// Magic bytes opening every image file.
pub const IMAGE_MAGIC: [u8; 8] = *b"PLPNVM1\0";
/// Current image format version.
pub const IMAGE_VERSION: u32 = 1;
/// Fixed on-disk header size in bytes.
pub const IMAGE_HEADER_BYTES: usize = 64;
/// Longest scheme name the header can carry.
pub const IMAGE_SCHEME_MAX: usize = 23;

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a 64 over `bytes` — the same hash the bench cache keys use, so
/// image checksums stay dependency-free and deterministic.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_BASIS;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Identity of an image: which run produced it, against which geometry.
///
/// Enough for a reader to rebuild the matching integrity tree and to
/// refuse images from a different run than the one it expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageHeader {
    /// Integrity-tree arity the run was configured with.
    pub arity: u64,
    /// Integrity-tree levels the run was configured with.
    pub levels: u32,
    /// Trace seed of the producing run.
    pub seed: u64,
    /// Stable scheme name of the producing run (e.g. `"sp"`).
    pub scheme: String,
}

impl ImageHeader {
    /// Encodes the header into its fixed 64-byte on-disk form.
    ///
    /// Scheme names longer than [`IMAGE_SCHEME_MAX`] are truncated at a
    /// byte boundary; every stable scheme name in the workspace is far
    /// shorter.
    pub fn encode(&self) -> [u8; IMAGE_HEADER_BYTES] {
        let mut out = [0u8; IMAGE_HEADER_BYTES];
        out[0..8].copy_from_slice(&IMAGE_MAGIC);
        out[8..12].copy_from_slice(&IMAGE_VERSION.to_le_bytes());
        out[12..16].copy_from_slice(&self.levels.to_le_bytes());
        out[16..24].copy_from_slice(&self.arity.to_le_bytes());
        out[24..32].copy_from_slice(&self.seed.to_le_bytes());
        let name = self.scheme.as_bytes();
        let take = name.len().min(IMAGE_SCHEME_MAX);
        out[32] = take as u8;
        out[33..33 + take].copy_from_slice(&name[..take]);
        let sum = fnv1a(&out[..56]);
        out[56..64].copy_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes a header from its on-disk form, validating magic,
    /// version, checksum, and the scheme-name field.
    pub fn decode(bytes: &[u8; IMAGE_HEADER_BYTES]) -> Result<Self, NvmError> {
        if bytes[0..8] != IMAGE_MAGIC {
            return Err(NvmError::ImageBadMagic);
        }
        let version = read_u32(bytes, 8);
        if version != IMAGE_VERSION {
            return Err(NvmError::ImageBadVersion { version });
        }
        let sum = read_u64(bytes, 56);
        if sum != fnv1a(&bytes[..56]) {
            return Err(NvmError::ImageHeaderCorrupt);
        }
        let scheme_len = bytes[32] as usize;
        if scheme_len > IMAGE_SCHEME_MAX {
            return Err(NvmError::ImageHeaderCorrupt);
        }
        let scheme = match std::str::from_utf8(&bytes[33..33 + scheme_len]) {
            Ok(s) => s.to_string(),
            Err(_) => return Err(NvmError::ImageHeaderCorrupt),
        };
        Ok(ImageHeader {
            arity: read_u64(bytes, 16),
            levels: read_u32(bytes, 12),
            seed: read_u64(bytes, 24),
            scheme,
        })
    }
}

fn read_u32(bytes: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[off..off + 4]);
    u32::from_le_bytes(b)
}

fn read_u64(bytes: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[off..off + 8]);
    u64::from_le_bytes(b)
}

/// Encodes one complete frame: `[tag][len u32][payload][fnv u64]`.
///
/// Public because the frame format doubles as the supervisor's IPC
/// envelope: an isolated matrix child returns its `RunReport` over a
/// pipe as exactly one of these frames, so corruption detection on
/// the wire reuses the medium's checksum discipline.
pub fn encode_frame(tag: u8, payload: &[u8]) -> Vec<u8> {
    let mut frame = Vec::with_capacity(13 + payload.len());
    frame.push(tag);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    let sum = fnv1a(&frame);
    frame.extend_from_slice(&sum.to_le_bytes());
    frame
}

/// Decodes one frame from the front of `bytes`.
///
/// Returns `(tag, payload, frame_len)` when the leading frame is
/// intact, `None` when it is truncated or fails its checksum — the
/// same acceptance rule [`read_image`] applies per frame, exposed for
/// pipe readers that receive frames outside an image file.
pub fn decode_frame(bytes: &[u8]) -> Option<(u8, &[u8], usize)> {
    if bytes.len() < 13 {
        return None;
    }
    let len = read_u32(bytes, 1) as usize;
    let end = 13usize.checked_add(len)?;
    if bytes.len() < end {
        return None;
    }
    let body = &bytes[..5 + len];
    if read_u64(bytes, 5 + len) != fnv1a(body) {
        return None;
    }
    Some((bytes[0], &bytes[5..5 + len], end))
}

/// Write-through appender for a device image.
///
/// Every append is a single `write_all` straight to the file — no
/// userspace buffering, so a SIGKILL between appends loses nothing and
/// a SIGKILL *during* an append tears at most the final frame, which
/// readers discard.
#[derive(Debug)]
pub struct ImageWriter {
    file: File,
    path: PathBuf,
}

impl ImageWriter {
    /// Creates (truncating) the image file and writes its header.
    pub fn create(path: &Path, header: &ImageHeader) -> Result<Self, NvmError> {
        let mut file = File::create(path).map_err(|_| NvmError::ImageIo { op: "create" })?;
        file.write_all(&header.encode())
            .map_err(|_| NvmError::ImageIo { op: "write" })?;
        Ok(ImageWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Appends one complete frame.
    pub fn append(&mut self, tag: u8, payload: &[u8]) -> Result<(), NvmError> {
        self.file
            .write_all(&encode_frame(tag, payload))
            .map_err(|_| NvmError::ImageIo { op: "write" })
    }

    /// Appends only the first `keep` bytes of the frame — the
    /// deterministic stand-in for a write the kill lands on. Readers
    /// will discard the torn frame, so an `append_torn` followed by
    /// process death leaves the image exactly as if the frame were
    /// never attempted.
    pub fn append_torn(&mut self, tag: u8, payload: &[u8], keep: usize) -> Result<(), NvmError> {
        let frame = encode_frame(tag, payload);
        let keep = keep.min(frame.len().saturating_sub(1));
        self.file
            .write_all(&frame[..keep])
            .map_err(|_| NvmError::ImageIo { op: "write" })
    }

    /// Flushes file contents to stable storage (`fdatasync`). Not
    /// needed for the SIGKILL crash model; offered for callers that
    /// also want the image to survive power loss.
    pub fn sync(&mut self) -> Result<(), NvmError> {
        self.file
            .sync_data()
            .map_err(|_| NvmError::ImageIo { op: "sync" })
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// One intact frame recovered from an image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageRecord {
    /// Frame tag (meaning assigned by the producer).
    pub tag: u8,
    /// Frame payload.
    pub payload: Vec<u8>,
}

/// Everything a reader recovers from an image file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImageContents {
    /// Validated header.
    pub header: ImageHeader,
    /// All intact frames, in append order.
    pub records: Vec<ImageRecord>,
    /// Bytes discarded from the first bad frame onward (0 for a
    /// cleanly closed image). Nonzero means the writer died mid-frame.
    pub torn_tail_bytes: u64,
}

/// Reads and validates an image file.
///
/// Header problems are hard, typed errors. A bad frame is *not* an
/// error: frames after the last intact one are the write the kill
/// interrupted, so they are counted into
/// [`ImageContents::torn_tail_bytes`] and dropped — tuple atomicity at
/// the medium level.
pub fn read_image(path: &Path) -> Result<ImageContents, NvmError> {
    let mut file = File::open(path).map_err(|_| NvmError::ImageIo { op: "read" })?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|_| NvmError::ImageIo { op: "read" })?;
    if bytes.len() < IMAGE_HEADER_BYTES {
        return Err(NvmError::ImageHeaderTruncated {
            len: bytes.len() as u64,
        });
    }
    let mut head = [0u8; IMAGE_HEADER_BYTES];
    head.copy_from_slice(&bytes[..IMAGE_HEADER_BYTES]);
    let header = ImageHeader::decode(&head)?;

    let mut records = Vec::new();
    let mut off = IMAGE_HEADER_BYTES;
    let total = bytes.len();
    while off < total {
        // Frame = tag(1) + len(4) + payload + checksum(8).
        if total - off < 13 {
            break;
        }
        let len = read_u32(&bytes, off + 1) as usize;
        let Some(end) = off.checked_add(13 + len) else {
            break;
        };
        if end > total {
            break;
        }
        let body = &bytes[off..off + 5 + len];
        let sum = read_u64(&bytes, off + 5 + len);
        if sum != fnv1a(body) {
            break;
        }
        records.push(ImageRecord {
            tag: bytes[off],
            payload: bytes[off + 5..off + 5 + len].to_vec(),
        });
        off = end;
    }
    Ok(ImageContents {
        header,
        records,
        torn_tail_bytes: (total - off) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> ImageHeader {
        ImageHeader {
            arity: 8,
            levels: 9,
            seed: 7,
            scheme: "sp".to_string(),
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("plp_image_{}_{name}.img", std::process::id()))
    }

    #[test]
    fn frame_codec_round_trips_and_rejects_corruption() {
        let frame = encode_frame(9, b"hello");
        let (tag, payload, used) = decode_frame(&frame).expect("intact frame decodes");
        assert_eq!((tag, payload, used), (9, &b"hello"[..], frame.len()));
        // Truncation and bit flips both read as "no frame".
        assert_eq!(decode_frame(&frame[..frame.len() - 1]), None);
        let mut flipped = frame.clone();
        flipped[7] ^= 0x10;
        assert_eq!(decode_frame(&flipped), None);
    }

    #[test]
    fn header_round_trips() {
        let h = header();
        let bytes = h.encode();
        assert_eq!(ImageHeader::decode(&bytes), Ok(h));
    }

    #[test]
    fn header_rejects_bad_magic() {
        let mut bytes = header().encode();
        bytes[0] ^= 0xff;
        assert_eq!(ImageHeader::decode(&bytes), Err(NvmError::ImageBadMagic));
    }

    #[test]
    fn header_rejects_bad_version() {
        let mut bytes = header().encode();
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            ImageHeader::decode(&bytes),
            Err(NvmError::ImageBadVersion { version: 9 })
        );
    }

    #[test]
    fn header_rejects_flipped_bit_anywhere_past_magic() {
        for byte in 12..56 {
            let mut bytes = header().encode();
            bytes[byte] ^= 0x40;
            assert_eq!(
                ImageHeader::decode(&bytes),
                Err(NvmError::ImageHeaderCorrupt),
                "flip at byte {byte} must be caught"
            );
        }
    }

    #[test]
    fn write_read_round_trip_and_torn_tail() {
        let path = temp_path("roundtrip");
        let mut w = ImageWriter::create(&path, &header()).unwrap();
        w.append(1, &[1, 2, 3]).unwrap();
        w.append(2, b"payload").unwrap();
        w.append_torn(3, &[9; 40], 11).unwrap();
        drop(w);

        let img = read_image(&path).unwrap();
        assert_eq!(img.header, header());
        assert_eq!(
            img.records,
            vec![
                ImageRecord {
                    tag: 1,
                    payload: vec![1, 2, 3]
                },
                ImageRecord {
                    tag: 2,
                    payload: b"payload".to_vec()
                },
            ]
        );
        assert_eq!(img.torn_tail_bytes, 11);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_header_is_typed_error() {
        let path = temp_path("short");
        std::fs::write(&path, &header().encode()[..30]).unwrap();
        assert_eq!(
            read_image(&path),
            Err(NvmError::ImageHeaderTruncated { len: 30 })
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_frame_checksum_drops_tail() {
        let path = temp_path("badframe");
        let mut w = ImageWriter::create(&path, &header()).unwrap();
        w.append(1, &[5; 8]).unwrap();
        w.append(2, &[6; 8]).unwrap();
        drop(w);
        // Flip a payload byte of the second frame; its checksum now
        // fails, so only the first frame survives.
        let mut bytes = std::fs::read(&path).unwrap();
        let second_frame = IMAGE_HEADER_BYTES + 13 + 8;
        bytes[second_frame + 6] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let img = read_image(&path).unwrap();
        assert_eq!(img.records.len(), 1);
        assert_eq!(img.torn_tail_bytes, 21);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_image_has_no_records() {
        let path = temp_path("empty");
        let w = ImageWriter::create(&path, &header()).unwrap();
        drop(w);
        let img = read_image(&path).unwrap();
        assert!(img.records.is_empty());
        assert_eq!(img.torn_tail_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }
}
