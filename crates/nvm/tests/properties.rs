//! Property-based tests for the NVM device model, focused on the
//! interval-based bank scheduler: out-of-order request times must
//! never produce overlapping bank occupancy or time travel.

use plp_events::addr::BlockAddr;
use plp_events::Cycle;
use plp_nvm::{Interleave, Medium, NvmConfig, NvmDevice};
use proptest::prelude::*;

fn arb_ops() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
    // (request time, block, is_write) — times deliberately NOT sorted.
    prop::collection::vec((0u64..50_000, 0u64..4_096, any::<bool>()), 1..200)
}

proptest! {
    /// Completion never precedes the request: no time travel, even
    /// when requests arrive wildly out of order.
    #[test]
    fn completions_are_causal(ops in arb_ops(), block_interleave in any::<bool>()) {
        let mut d = NvmDevice::new(NvmConfig {
            interleave: if block_interleave {
                Interleave::BlockLevel
            } else {
                Interleave::RowLevel
            },
            ..NvmConfig::paper_default()
        });
        for (t, b, w) in ops {
            let now = Cycle::new(t);
            let done = if w {
                d.write(now, BlockAddr::new(b))
            } else {
                d.read(now, BlockAddr::new(b))
            };
            prop_assert!(done > now, "completion {done} not after request {now}");
        }
    }

    /// Per-bank occupancy intervals never overlap: replaying all
    /// requests to a single-bank device, each (start, end) pair
    /// derived from completions must be disjoint.
    #[test]
    fn single_bank_reservations_disjoint(times in prop::collection::vec(0u64..20_000, 1..100)) {
        let mut d = NvmDevice::new(NvmConfig {
            banks: 1,
            write_queue: 100_000,
            read_queue: 100_000,
            ..NvmConfig::paper_default()
        });
        // All writes to distinct blocks (no combining), one bank.
        let mut intervals = Vec::new();
        for (i, t) in times.iter().enumerate() {
            let done = d.write(Cycle::new(*t), BlockAddr::new(i as u64));
            let start = done.get() - 600; // tWR at 4 GHz
            intervals.push((start, done.get()));
        }
        intervals.sort();
        for w in intervals.windows(2) {
            prop_assert!(
                w[0].1 <= w[1].0,
                "overlapping bank occupancy: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    /// Write combining never changes *what* is durable, only how many
    /// media writes happen: writes + combined writes equals requests.
    #[test]
    fn write_combining_accounting(ops in prop::collection::vec((0u64..10_000, 0u64..16), 1..200)) {
        let mut d = NvmDevice::new(NvmConfig::paper_default());
        let mut sorted = ops.clone();
        sorted.sort();
        for (t, b) in &sorted {
            let _ = d.write(Cycle::new(*t), BlockAddr::new(*b));
        }
        let s = d.stats();
        prop_assert_eq!(s.writes + s.writes_combined, sorted.len() as u64);
    }

    /// The functional medium is exactly last-writer-wins.
    #[test]
    fn medium_last_writer_wins(ops in prop::collection::vec((0u64..64, any::<u32>()), 1..200)) {
        let mut m: Medium<u32> = Medium::new();
        let mut model = std::collections::HashMap::new();
        for (addr, v) in &ops {
            m.write(BlockAddr::new(*addr), *v);
            model.insert(*addr, *v);
        }
        for (addr, v) in model {
            prop_assert_eq!(m.read(BlockAddr::new(addr)), v);
        }
    }
}
