//! Property-based tests for the device-image header codec: every
//! well-formed header round-trips through its 64-byte on-disk form,
//! and any single corrupted byte is detected as a typed error — the
//! crash harness must never mistake a damaged header for a clean one.

use plp_nvm::image::{ImageHeader, IMAGE_HEADER_BYTES};
use plp_nvm::NvmError;
use proptest::prelude::*;

fn scheme_from(letters: &[u8]) -> String {
    letters.iter().map(|l| char::from(b'a' + (l % 26))).collect()
}

proptest! {
    /// encode → decode is the identity for any geometry, seed, and
    /// scheme name that fits the fixed-width field.
    #[test]
    fn header_codec_round_trips(
        arity in any::<u64>(),
        levels in any::<u32>(),
        seed in any::<u64>(),
        letters in prop::collection::vec(any::<u8>(), 0..23),
    ) {
        let header = ImageHeader {
            arity,
            levels,
            seed,
            scheme: scheme_from(&letters),
        };
        let bytes = header.encode();
        prop_assert_eq!(ImageHeader::decode(&bytes), Ok(header));
    }

    /// Flipping any single bit anywhere in the header is detected:
    /// bad magic, bad version, or a checksum mismatch — never a
    /// silently accepted wrong header, never a panic.
    #[test]
    fn header_codec_detects_any_single_bit_flip(
        arity in any::<u64>(),
        levels in any::<u32>(),
        seed in any::<u64>(),
        letters in prop::collection::vec(any::<u8>(), 0..23),
        byte in 0usize..IMAGE_HEADER_BYTES,
        bit in 0u32..8,
    ) {
        let header = ImageHeader {
            arity,
            levels,
            seed,
            scheme: scheme_from(&letters),
        };
        let mut bytes = header.encode();
        bytes[byte] ^= 1u8 << bit;
        let decoded = ImageHeader::decode(&bytes);
        prop_assert!(
            decoded != Ok(header),
            "corrupted header at byte {} bit {} decoded cleanly",
            byte,
            bit
        );
        // The error class is one of the typed image errors.
        if let Err(e) = decoded {
            prop_assert!(
                matches!(
                    e,
                    NvmError::ImageBadMagic
                        | NvmError::ImageBadVersion { .. }
                        | NvmError::ImageHeaderCorrupt
                ),
                "unexpected error class {e}"
            );
        }
    }
}
