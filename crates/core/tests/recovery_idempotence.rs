//! Property: durable recovery is an idempotent, byte-identical
//! fixpoint — for any scheme, trace seed and torn-tail cut position,
//! `recover_image` commits a canonical recovered image whose second
//! recovery rewrites nothing and leaves the file byte-for-byte
//! unchanged, and replaying the recovered image is itself stable.
//!
//! The cut position models where a SIGKILL landed inside the final
//! append: every byte offset into the image is a legal crash instant,
//! so the property quantifies over it directly instead of enumerating
//! armed failpoints.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Mutex;

use plp_core::{
    recover_image, recovery_scratch_path, replay_image, DurableSink, ObserverExpectation,
    PersistRecord, RecoveryManager, SimSetup, SystemConfig, UpdateScheme,
};
use plp_trace::spec;
use proptest::prelude::*;

const INSTRUCTIONS: u64 = 4_000;

/// One fully-run durable image plus everything recovery needs.
#[derive(Clone)]
struct BaseImage {
    bytes: Vec<u8>,
    records: Vec<PersistRecord>,
    config: SystemConfig,
}

/// Simulating a full run per proptest case would dominate the budget;
/// each (scheme, seed) image is simulated once and truncation cases
/// share it.
fn base_image(scheme: UpdateScheme, seed: u64) -> BaseImage {
    static CACHE: Mutex<Option<HashMap<(&'static str, u64), BaseImage>>> = Mutex::new(None);
    let mut cache = CACHE.lock().unwrap();
    let cache = cache.get_or_insert_with(HashMap::new);
    if let Some(base) = cache.get(&(scheme.name(), seed)) {
        return base.clone();
    }

    let mut config = SystemConfig::for_scheme(scheme);
    config.record_persists = true;
    let profile = spec::benchmark("gcc").unwrap();
    let setup = SimSetup::for_profile(config, &profile, seed).unwrap();
    let trace = setup.generate_trace(INSTRUCTIONS);
    let path = temp_image(&format!("base-{}-{seed}", scheme.name()));
    let mut sim = setup.simulation();
    sim.attach_durable_sink(DurableSink::create(&path, setup.config(), seed).unwrap());
    let (report, finished) = sim.run_with_state(&trace);
    assert_eq!(finished.durable_error(), None);
    let base = BaseImage {
        bytes: std::fs::read(&path).unwrap(),
        records: report.records,
        config: setup.config().clone(),
    };
    std::fs::remove_file(&path).unwrap();
    cache.insert((scheme.name(), seed), base.clone());
    base
}

fn temp_image(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "plp-recovery-prop-{name}-{}.img",
        std::process::id()
    ))
}

/// Program-order fold of the completely-persisted prefix — the
/// observer the crash harness judges recovery against.
fn expectation_for(
    records: &[PersistRecord],
    complete: &std::collections::BTreeSet<u64>,
) -> ObserverExpectation {
    let mut plaintexts = HashMap::new();
    for r in records.iter().filter(|r| complete.contains(&r.id.0)) {
        plaintexts.insert(r.addr, r.plaintext);
    }
    ObserverExpectation { plaintexts }
}

const SCHEMES: [UpdateScheme; 6] = [
    UpdateScheme::Sp,
    UpdateScheme::Coalescing,
    UpdateScheme::O3,
    UpdateScheme::Unordered,
    UpdateScheme::TriadNvm,
    UpdateScheme::Phoenix,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// replay → recover → recover reaches a byte-identical fixpoint
    /// for every (scheme, seed, kill offset), and the recovered image
    /// never resurrects persists the cut discarded.
    #[test]
    fn recovery_is_idempotent_for_any_torn_tail(
        scheme_idx in 0usize..SCHEMES.len(),
        seed in 1u64..4,
        cut in 0.0f64..1.0,
    ) {
        let scheme = SCHEMES[scheme_idx];
        let base = base_image(scheme, seed);

        // Cut the image at an arbitrary byte offset, but keep the
        // 32-byte header — a kill cannot halve the header because the
        // sink writes it before the run starts.
        let header = 32.min(base.bytes.len());
        let len = header + ((base.bytes.len() - header) as f64 * cut) as usize;
        let path = temp_image(&format!("cut-{}-{seed}", scheme.name()));
        std::fs::write(&path, &base.bytes[..len]).unwrap();

        let key = base.config.key;
        let torn = replay_image(&path, key).unwrap();
        prop_assert!(!torn.recovered);
        let expected = expectation_for(&base.records, &torn.complete_ids);
        let manager = RecoveryManager::for_config(&base.config);

        let wb = recover_image(&path, key, &manager, &base.records, &expected, None).unwrap();
        prop_assert!(wb.rewritten, "a raw image must be rewritten once");
        let bytes1 = std::fs::read(&path).unwrap();
        prop_assert!(!recovery_scratch_path(&path).exists(), "scratch must be renamed away");

        // The committed image is canonical: no torn tail, survivors
        // only, the adopted root durable, quarantine recorded.
        let recovered = replay_image(&path, key).unwrap();
        prop_assert!(recovered.recovered);
        prop_assert_eq!(recovered.torn_tail_bytes, 0);
        prop_assert_eq!(&recovered.complete_ids, &torn.complete_ids);
        prop_assert_eq!(recovered.image.root, wb.outcome.adopted_root);
        prop_assert_eq!(
            &recovered.quarantined,
            &wb.outcome.quarantined().into_iter().collect()
        );

        // Second recovery: detects the fixpoint, rewrites nothing,
        // file bytes identical. A first-pass `Repaired` softens to
        // `Clean` (the adopted root is durable now); every other
        // verdict re-derives unchanged — in particular a detected loss
        // stays detected, never silently "healed".
        let wb2 = recover_image(&path, key, &manager, &base.records, &expected, None).unwrap();
        prop_assert!(!wb2.rewritten, "recovering a recovered image must be a no-op");
        let softened = if wb.outcome.verdict() == plp_core::FaultVerdict::Repaired {
            plp_core::FaultVerdict::Clean
        } else {
            wb.outcome.verdict()
        };
        prop_assert_eq!(wb2.outcome.verdict(), softened);
        prop_assert_eq!(wb2.outcome.quarantined(), wb.outcome.quarantined());
        prop_assert_eq!(std::fs::read(&path).unwrap(), bytes1);

        // And replay of the fixpoint is stable too.
        let again = replay_image(&path, key).unwrap();
        prop_assert_eq!(again.image, recovered.image);
        prop_assert_eq!(again.complete_ids, recovered.complete_ids);
        std::fs::remove_file(&path).unwrap();
    }
}
