//! Property tests for the shared retry/backoff policy
//! (`plp_core::retry`, implemented in `plp_events::retry`).
//!
//! The two properties the harness supervisor leans on: schedules are a
//! pure function of `(policy, run key, seed)` — no entropy anywhere —
//! and every delay is bounded by the policy's cap (jitter included),
//! so a retry budget translates into a hard worst-case wait.

use plp_core::retry::{RetryPolicy, RetryToken};
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = RetryPolicy> {
    (0u32..10, 1u64..100_000, 1u64..8, 0u64..100)
        .prop_map(|(max_retries, base, mult, jitter_pct)| {
            let base_delay_ns = base as f64;
            RetryPolicy {
                max_retries,
                base_delay_ns,
                multiplier: mult as f64,
                max_delay_ns: base_delay_ns * 16.0,
                jitter: jitter_pct as f64 / 100.0,
            }
        })
}

proptest! {
    /// The schedule for a (run key, seed) pair is deterministic: two
    /// independent computations agree delay-for-delay.
    #[test]
    fn schedules_are_deterministic_per_key_and_seed(
        policy in arb_policy(),
        seed in any::<u64>(),
        key_a in 0u64..1_000,
        key_b in 0u64..1_000,
    ) {
        let key = format!("bench=gcc|instr={key_a}|seed={key_b}");
        let token = RetryToken::new(seed).mix_str(&key);
        let again = RetryToken::new(seed).mix_str(&key);
        prop_assert_eq!(token, again);
        prop_assert_eq!(policy.schedule(token), policy.schedule(again));
    }

    /// Every delay is non-negative and bounded by the jittered cap,
    /// and the schedule length equals the retry budget.
    #[test]
    fn schedules_are_bounded(policy in arb_policy(), seed in any::<u64>()) {
        let token = RetryToken::new(seed).mix_str("bounded");
        let schedule = policy.schedule(token);
        prop_assert_eq!(schedule.len(), policy.max_retries as usize);
        let cap = policy.max_delay_ns * (1.0 + policy.jitter);
        let mut total = 0.0;
        for (i, d) in schedule.iter().enumerate() {
            prop_assert!(*d >= 0.0, "retry {i} waits a negative {d}");
            prop_assert!(*d <= cap, "retry {i} waits {d} past the cap {cap}");
            total += *d;
        }
        prop_assert!(total <= policy.worst_case_total_ns() + 1e-9);
    }

    /// Jitter never changes the order of magnitude the caller asked
    /// for: the jittered delay stays within `[1-j, 1+j]` of the
    /// un-jittered schedule point.
    #[test]
    fn jitter_stays_proportional(
        policy in arb_policy(),
        seed in any::<u64>(),
        attempt in 1u32..10,
    ) {
        prop_assume!(attempt <= policy.max_retries);
        let token = RetryToken::new(seed);
        let flat = RetryPolicy { jitter: 0.0, ..policy };
        let bare = flat.delay_ns(token, attempt);
        let jittered = policy.delay_ns(token, attempt);
        prop_assert!(jittered >= bare * (1.0 - policy.jitter) - 1e-9);
        prop_assert!(jittered <= bare * (1.0 + policy.jitter) + 1e-9);
    }
}
