//! Cross-scheme metamorphic tests: on a shared trace the persistency
//! schemes are different *schedulers* over the same architectural
//! state machine, so every crash-consistent scheme must converge to
//! the same final BMT root and the same persisted-tuple set, and the
//! paper's mechanism ladder must never *increase* BMT work
//! (coalescing <= o3 <= pipeline <= sp node updates).
//!
//! The traces here store each block at most once, so the final
//! counter state — and therefore the final root — is independent of
//! the order in which the schemes drain their persists.

use plp_core::{PersistRecord, SimSetup, SystemConfig, UpdateScheme};
use plp_events::addr::PageAddr;
use plp_events::Cycle;
use plp_trace::{Op, Trace, TraceEvent};
use proptest::prelude::*;

/// The crash-consistent schemes: every persist is ordered, so the
/// architectural tree must reach the same final value on all of them.
/// `phoenix` is strict per-store persistency with a dual-copy root
/// commit, so it belongs here; `triad_nvm` relaxes the upper tree and
/// is covered by its own convergence test below.
const CORRECT: [UpdateScheme; 6] = [
    UpdateScheme::Sp,
    UpdateScheme::Pipeline,
    UpdateScheme::O3,
    UpdateScheme::Coalescing,
    UpdateScheme::SpCounterTree,
    UpdateScheme::Phoenix,
];

/// A trace that stores each page's first block exactly once, with a
/// small instruction gap between stores.
fn distinct_page_trace(pages: &[u64]) -> Trace {
    let events = pages
        .iter()
        .map(|&p| TraceEvent {
            gap_instructions: 3,
            op: Op::Store {
                addr: PageAddr::new(p).first_block(),
                stack: false,
            },
        })
        .collect();
    Trace::new(events)
}

struct SchemeRun {
    report: plp_core::RunReport,
    root: plp_bmt::NodeValue,
}

fn run_scheme(scheme: UpdateScheme, trace: &Trace) -> SchemeRun {
    let mut cfg = SystemConfig::for_scheme(scheme);
    cfg.record_persists = true;
    let setup = SimSetup::new(cfg).expect("paper-default config is valid");
    let (report, finished) = setup.simulation().run_with_state(trace);
    SchemeRun {
        report,
        root: finished.architectural_root(),
    }
}

/// The order-independent functional payload of a persist record: the
/// block and the counter it persisted under.
fn counter_key(r: &PersistRecord) -> (u64, plp_crypto::CounterValue) {
    (r.addr.index(), r.counters_after.value(r.addr.slot_in_page()))
}

/// The full functional payload, comparable only within a scheduler
/// class (the plaintext carries the persist sequence number).
fn tuple_key(r: &PersistRecord) -> (u64, u64, u64) {
    (r.addr.index(), r.ciphertext.as_u64(), r.mac.raw())
}

/// The order-*dependent* payload, for schemes that must agree persist
/// by persist (same scheduler class, same program order).
fn tuple_seq(records: &[PersistRecord]) -> Vec<(u64, u64, u64)> {
    records.iter().map(tuple_key).collect()
}

#[test]
fn correct_schemes_share_root_and_tuples_on_a_clustered_burst() {
    // 96 distinct pages clustered into a few subtrees, so epoch
    // schemes get real LCA sharing to exploit.
    let pages: Vec<u64> = (0..96u64).map(|i| (i % 12) * 64 + i / 12).collect();
    let trace = distinct_page_trace(&pages);

    let runs: Vec<(UpdateScheme, SchemeRun)> = CORRECT
        .iter()
        .map(|&s| (s, run_scheme(s, &trace)))
        .collect();

    let (ref_scheme, ref_run) = &runs[0];
    assert!(
        ref_run.root != plp_bmt::NodeValue::default(),
        "reference run must actually move the tree"
    );
    for (scheme, run) in &runs {
        assert_eq!(
            run.root, ref_run.root,
            "{scheme:?} final BMT root diverged from {ref_scheme:?}"
        );
        assert_eq!(
            run.report.persists, ref_run.report.persists,
            "{scheme:?} ordered-persist count diverged from {ref_scheme:?}"
        );
        assert!(
            run.report.sanitizer.is_clean(),
            "{scheme:?} sanitizer verdict not clean: {:?}",
            run.report.sanitizer.violations
        );
        // Order-independent tuple set: same blocks ending at the same
        // counter values. (Ciphertexts are only comparable within a
        // scheduler class — the persisted payload carries the persist
        // sequence number, which drain order permutes.)
        let mut ours: Vec<_> = run.report.records.iter().map(counter_key).collect();
        let mut theirs: Vec<_> = ref_run.report.records.iter().map(counter_key).collect();
        ours.sort_unstable();
        theirs.sort_unstable();
        assert_eq!(ours, theirs, "{scheme:?} tuple set diverged from {ref_scheme:?}");
    }

    // Within a scheduler class the full persist *sequence* must agree,
    // not just the set: strict write-through schemes persist in program
    // order, epoch schemes in epoch-set order.
    let strict: Vec<&SchemeRun> = runs
        .iter()
        .filter(|(s, _)| {
            matches!(
                s,
                UpdateScheme::Sp
                    | UpdateScheme::Pipeline
                    | UpdateScheme::SpCounterTree
                    | UpdateScheme::Phoenix
            )
        })
        .map(|(_, r)| r)
        .collect();
    for r in &strict[1..] {
        assert_eq!(
            tuple_seq(&r.report.records),
            tuple_seq(&strict[0].report.records),
            "strict schemes must persist identical tuples in program order"
        );
    }
    let epochal: Vec<&SchemeRun> = runs
        .iter()
        .filter(|(s, _)| matches!(s, UpdateScheme::O3 | UpdateScheme::Coalescing))
        .map(|(_, r)| r)
        .collect();
    assert_eq!(
        tuple_seq(&epochal[1].report.records),
        tuple_seq(&epochal[0].report.records),
        "o3 and coalescing must flush identical tuples in epoch order"
    );
}

#[test]
fn node_update_counts_obey_the_mechanism_ladder() {
    // Page-local clustering makes coalescing's LCA savings real.
    let pages: Vec<u64> = (0..128u64).map(|i| (i % 4) * 8 + i / 4).collect();
    let trace = distinct_page_trace(&pages);

    let sp = run_scheme(UpdateScheme::Sp, &trace);
    let pipe = run_scheme(UpdateScheme::Pipeline, &trace);
    let o3 = run_scheme(UpdateScheme::O3, &trace);
    let co = run_scheme(UpdateScheme::Coalescing, &trace);

    let (n_sp, n_pipe, n_o3, n_co) = (
        sp.report.engine.node_updates,
        pipe.report.engine.node_updates,
        o3.report.engine.node_updates,
        co.report.engine.node_updates,
    );
    assert!(n_co <= n_o3, "coalescing did {n_co} updates, o3 only {n_o3}");
    assert!(n_o3 <= n_pipe, "o3 did {n_o3} updates, pipeline only {n_pipe}");
    assert!(n_pipe <= n_sp, "pipeline did {n_pipe} updates, sp only {n_sp}");
    assert!(
        n_co < n_o3,
        "a page-clustered epoch burst must let coalescing strictly save work"
    );
    assert!(
        co.report.coalesced_saved_updates > 0,
        "a page-clustered epoch burst must let coalescing save updates"
    );
    // Each counted save elides at least one node update (a coalesced
    // persist skips its whole shared suffix), so the counter is a
    // lower bound on the realized saving, never an overstatement.
    assert!(
        n_co + co.report.coalesced_saved_updates <= n_o3,
        "saved-update counter overstates the realized saving: \
         {n_co} + {} > {n_o3}",
        co.report.coalesced_saved_updates
    );
}

#[test]
fn unordered_strawman_still_converges_architecturally() {
    // `unordered` drops Invariant 2 (not crash-consistent) but issues
    // the same write-through persist per store, so its *architectural*
    // root must still match sp's.
    let pages: Vec<u64> = (0..40u64).collect();
    let trace = distinct_page_trace(&pages);
    let sp = run_scheme(UpdateScheme::Sp, &trace);
    let un = run_scheme(UpdateScheme::Unordered, &trace);
    assert_eq!(un.root, sp.root);
    assert_eq!(
        tuple_seq(&un.report.records),
        tuple_seq(&sp.report.records)
    );
}

#[test]
fn triad_nvm_converges_architecturally_with_truncated_tree_work() {
    // `triad_nvm` persists only the deepest levels strictly, but it is
    // still a per-store scheduler over the same architectural state
    // machine: root, persist count and tuple sequence must match sp's,
    // while its serialized walk — truncated at the persisted floor —
    // must do strictly less BMT work than sp's full walk.
    let pages: Vec<u64> = (0..64u64).map(|i| (i % 8) * 32 + i / 8).collect();
    let trace = distinct_page_trace(&pages);
    let sp = run_scheme(UpdateScheme::Sp, &trace);
    let triad = run_scheme(UpdateScheme::TriadNvm, &trace);

    assert_eq!(triad.root, sp.root, "triad_nvm architectural root diverged");
    assert_eq!(triad.report.persists, sp.report.persists);
    assert_eq!(
        tuple_seq(&triad.report.records),
        tuple_seq(&sp.report.records),
        "triad_nvm must persist identical tuples in program order"
    );
    assert!(
        triad.report.sanitizer.is_clean(),
        "triad_nvm sanitizer verdict not clean: {:?}",
        triad.report.sanitizer.violations
    );
    let (n_sp, n_triad) = (
        sp.report.engine.node_updates,
        triad.report.engine.node_updates,
    );
    assert!(
        n_triad < n_sp,
        "the truncated walk must save tree work: triad {n_triad} vs sp {n_sp}"
    );
    // The truncation ratio is exact: both walks are per-persist and
    // serialized, so the update counts are persists * walked levels.
    let cfg = SystemConfig::for_scheme(UpdateScheme::TriadNvm);
    let walked = u64::from(cfg.bmt.levels() - cfg.triad_floor() + 1);
    assert_eq!(n_triad, triad.report.persists * walked);
    assert_eq!(n_sp, sp.report.persists * u64::from(cfg.bmt.levels()));
}

#[test]
fn schemes_finish_in_finite_time_and_roots_are_nonzero() {
    let pages: Vec<u64> = (0..16u64).collect();
    let trace = distinct_page_trace(&pages);
    for scheme in CORRECT {
        let run = run_scheme(scheme, &trace);
        assert!(run.report.total_cycles > Cycle::ZERO);
        assert!(run.root != plp_bmt::NodeValue::default());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any distinct-page store burst: every correct scheme converges
    /// to the same root, with a clean sanitizer verdict, and the
    /// mechanism ladder never increases BMT work.
    #[test]
    fn arbitrary_distinct_bursts_converge(
        raw in prop::collection::vec(0u64..2048, 1..80),
    ) {
        let mut pages = raw;
        pages.sort_unstable();
        pages.dedup();
        let trace = distinct_page_trace(&pages);

        let mut root = None;
        let mut ladder = Vec::new();
        for scheme in CORRECT {
            let run = run_scheme(scheme, &trace);
            prop_assert!(
                run.report.sanitizer.is_clean(),
                "{:?} sanitizer fired on a correct scheme",
                scheme
            );
            match root {
                None => root = Some(run.root),
                Some(r) => prop_assert_eq!(run.root, r, "{:?} root diverged", scheme),
            }
            if matches!(
                scheme,
                UpdateScheme::Sp
                    | UpdateScheme::Pipeline
                    | UpdateScheme::O3
                    | UpdateScheme::Coalescing
            ) {
                ladder.push(run.report.engine.node_updates);
            }
        }
        // ladder holds [sp, pipeline, o3, coalescing] in CORRECT order.
        for w in ladder.windows(2) {
            prop_assert!(w[1] <= w[0], "mechanism ladder increased BMT work: {:?}", ladder);
        }
    }
}
