//! Failpoint catalog determinism: the same `(scheme, trace seed,
//! failpoint, hit)` must fire at the same persist index on every run
//! and on every thread — a crash-harness verdict observed once has to
//! stay reproducible forever.

use plp_core::{
    Failpoint, FailpointPlan, FailpointRegistry, FiredFailpoint, SimSetup, SystemConfig,
    UpdateScheme,
};
use plp_trace::spec;

const INSTRUCTIONS: u64 = 6_000;
const SEED: u64 = 7;

fn observe_run(scheme: UpdateScheme, plan: FailpointPlan) -> Option<FiredFailpoint> {
    let profile = spec::benchmark("gcc").unwrap();
    let setup = SimSetup::for_profile(SystemConfig::for_scheme(scheme), &profile, SEED).unwrap();
    let trace = setup.generate_trace(INSTRUCTIONS);
    let mut sim = setup.simulation();
    sim.arm_failpoints(FailpointRegistry::observe(plan));
    let (_, finished) = sim.run_with_state(&trace);
    finished.fired_failpoint()
}

fn grid(scheme: UpdateScheme) -> Vec<FailpointPlan> {
    let mut plans = vec![
        FailpointPlan {
            point: Failpoint::MidTuple,
            hit: 40,
        },
        FailpointPlan {
            point: Failpoint::BetweenLevels,
            hit: 200,
        },
        FailpointPlan {
            point: Failpoint::PreRootSeal,
            hit: 25,
        },
        FailpointPlan {
            point: Failpoint::PostRootSeal,
            hit: 25,
        },
    ];
    if scheme.is_epoch_based() {
        plans.push(FailpointPlan {
            point: Failpoint::MidEpochFlush,
            hit: 10,
        });
        plans.push(FailpointPlan {
            point: Failpoint::PostEpochSeal,
            hit: 1,
        });
    }
    plans
}

/// Same plan, repeated serial runs: identical firing site.
#[test]
fn firing_site_is_stable_across_runs() {
    for scheme in [UpdateScheme::Sp, UpdateScheme::Unordered, UpdateScheme::O3] {
        for plan in grid(scheme) {
            let first = observe_run(scheme, plan);
            let second = observe_run(scheme, plan);
            assert_eq!(
                first, second,
                "{} at {:?} fired at different sites across runs",
                scheme.name(),
                plan
            );
            let fired = first.unwrap_or_else(|| {
                panic!("{} never reached {:?}", scheme.name(), plan)
            });
            assert_eq!(fired.point, plan.point);
            assert_eq!(fired.hit, plan.hit);
            assert!(fired.persist > 0, "firing must be inside a persist");
        }
    }
}

/// Same plan on many concurrent threads: every thread reports the
/// same firing site as the serial run.
#[test]
fn firing_site_is_stable_across_threads() {
    for scheme in [UpdateScheme::Sp, UpdateScheme::Coalescing] {
        let plan = FailpointPlan {
            point: Failpoint::PostRootSeal,
            hit: 33,
        };
        let serial = observe_run(scheme, plan);
        let handles: Vec<_> = (0..4)
            .map(|_| std::thread::spawn(move || observe_run(scheme, plan)))
            .collect();
        for h in handles {
            let threaded = h.join().expect("observer thread panicked");
            assert_eq!(
                serial, threaded,
                "{} fired at a different site on a worker thread",
                scheme.name()
            );
        }
    }
}

/// Hit counting does not depend on whether a durable sink is
/// attached: the firing site with a sink equals the one without.
#[test]
fn sink_attachment_does_not_move_firing_sites() {
    let scheme = UpdateScheme::Sp;
    let plan = FailpointPlan {
        point: Failpoint::MidTuple,
        hit: 60,
    };
    let bare = observe_run(scheme, plan);

    let profile = spec::benchmark("gcc").unwrap();
    let setup = SimSetup::for_profile(SystemConfig::for_scheme(scheme), &profile, SEED).unwrap();
    let trace = setup.generate_trace(INSTRUCTIONS);
    let path = std::env::temp_dir().join(format!(
        "plp-fp-determinism-{}.img",
        std::process::id()
    ));
    let mut sim = setup.simulation();
    sim.attach_durable_sink(
        plp_core::DurableSink::create(&path, setup.config(), SEED).unwrap(),
    );
    sim.arm_failpoints(FailpointRegistry::observe(plan));
    let (_, finished) = sim.run_with_state(&trace);
    assert_eq!(bare, finished.fired_failpoint());
    std::fs::remove_file(&path).unwrap();
}
