//! Property-based tests over the update engines: the ordering rules
//! each scheme promises must hold for arbitrary persist streams.

use plp_bmt::BmtGeometry;
use plp_core::engine::{
    CoalescingEngine, CounterTreeEngine, EngineCtx, EngineStats, OooEngine, PipelinedEngine,
    SequentialEngine, UpdateRequest,
};
use plp_core::meta::MetadataCaches;
use plp_events::Cycle;
use plp_nvm::{NvmConfig, NvmDevice};
use proptest::prelude::*;

const LEVELS: u32 = 4;

struct Harness {
    geometry: BmtGeometry,
    meta: MetadataCaches,
    nvm: NvmDevice,
    stats: EngineStats,
    walk: Vec<plp_bmt::NodeLabel>,
}

impl Harness {
    fn new(ideal: bool) -> Self {
        Harness {
            geometry: BmtGeometry::new(8, LEVELS),
            meta: MetadataCaches::new(32 << 10, ideal),
            nvm: NvmDevice::new(NvmConfig::paper_default()),
            stats: EngineStats::default(),
            walk: Vec::new(),
        }
    }

    fn ctx(&mut self) -> EngineCtx<'_> {
        EngineCtx {
            geometry: self.geometry,
            mac_latency: Cycle::new(40),
            meta: &mut self.meta,
            nvm: &mut self.nvm,
            stats: &mut self.stats,
            tap: None,
            walk: &mut self.walk,
            failpoints: None,
        }
    }
}

/// A persist stream: (page, arrival-gap) pairs.
fn arb_stream() -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0u64..512, 0u64..100), 1..60)
}

proptest! {
    /// The in-order pipeline's promise: root updates complete in
    /// persist order, strictly — regardless of arrival times, page
    /// reuse or cold BMT caches.
    #[test]
    fn pipeline_roots_strictly_ordered(stream in arb_stream(), ideal in any::<bool>()) {
        let mut h = Harness::new(ideal);
        let mut e = PipelinedEngine::new(Cycle::new(40), LEVELS, 64);
        let mut now = Cycle::ZERO;
        let mut last = Cycle::ZERO;
        for (page, gap) in stream {
            now += Cycle::new(gap);
            let done = e.persist(
                UpdateRequest { leaf: h.geometry.leaf(page), now },
                &mut h.ctx(),
            );
            prop_assert!(done > last, "root order violated: {done} after {last}");
            last = done;
        }
    }

    /// Sequential updates are never faster than pipelined ones on the
    /// same stream, and both perform identical node-update counts.
    #[test]
    fn sequential_dominates_pipeline(stream in arb_stream()) {
        let mut hs = Harness::new(true);
        let mut hp = Harness::new(true);
        let mut seq = SequentialEngine::new(Cycle::new(40));
        let mut pipe = PipelinedEngine::new(Cycle::new(40), LEVELS, 64);
        let mut now = Cycle::ZERO;
        let (mut last_s, mut last_p) = (Cycle::ZERO, Cycle::ZERO);
        for (page, gap) in stream {
            now += Cycle::new(gap);
            let rs = UpdateRequest { leaf: hs.geometry.leaf(page), now };
            last_s = last_s.max(seq.persist(rs, &mut hs.ctx()));
            let rp = UpdateRequest { leaf: hp.geometry.leaf(page), now };
            last_p = last_p.max(pipe.persist(rp, &mut hp.ctx()));
        }
        prop_assert!(last_s >= last_p, "sequential {last_s} beat pipeline {last_p}");
        prop_assert_eq!(hs.stats.node_updates, hp.stats.node_updates);
    }

    /// Epoch completions are monotone under OOO, and every epoch's
    /// completion respects the ETT floor (no epoch finishes before the
    /// one two back when ETT = 2).
    #[test]
    fn ooo_epoch_completions_monotone(
        epochs in prop::collection::vec(prop::collection::vec(0u64..512, 1..12), 1..12),
    ) {
        let mut h = Harness::new(true);
        let mut e = OooEngine::new(Cycle::new(40), LEVELS, 2);
        let mut completions: Vec<Cycle> = Vec::new();
        for (i, pages) in epochs.iter().enumerate() {
            let flush = Cycle::new(i as u64 * 50);
            for &p in pages {
                let _ = e.persist(
                    UpdateRequest { leaf: h.geometry.leaf(p), now: flush },
                    &mut h.ctx(),
                );
            }
            completions.push(e.seal_epoch());
        }
        for w in completions.windows(2) {
            prop_assert!(w[1] >= w[0], "epoch completions regressed");
        }
    }

    /// Coalescing never performs more node updates than plain OOO on
    /// the same epoch structure, and their epoch completions are both
    /// valid (coalescing may trade a bounded amount of latency).
    #[test]
    fn coalescing_never_exceeds_ooo_updates(
        epochs in prop::collection::vec(prop::collection::vec(0u64..512, 1..16), 1..8),
    ) {
        let mut ho = Harness::new(true);
        let mut hc = Harness::new(true);
        let mut o3 = OooEngine::new(Cycle::new(40), LEVELS, 2);
        let mut co = CoalescingEngine::new(Cycle::new(40), LEVELS, 2);
        for (i, pages) in epochs.iter().enumerate() {
            let flush = Cycle::new(i as u64 * 200);
            for &p in pages {
                let _ = o3.persist(
                    UpdateRequest { leaf: ho.geometry.leaf(p), now: flush },
                    &mut ho.ctx(),
                );
                let _ = co.persist(
                    UpdateRequest { leaf: hc.geometry.leaf(p), now: flush },
                    &mut hc.ctx(),
                );
            }
            let _ = o3.seal_epoch();
            let _ = co.seal_epoch(&mut hc.ctx());
        }
        prop_assert!(
            hc.stats.node_updates <= ho.stats.node_updates,
            "coalescing did {} updates, o3 only {}",
            hc.stats.node_updates,
            ho.stats.node_updates
        );
        prop_assert!(co.saved_updates() <= ho.stats.node_updates);
    }

    /// The SGX-style counter tree never completes a persist earlier
    /// than a plain sequential BMT walk of the same stream.
    #[test]
    fn counter_tree_dominates_sequential(stream in arb_stream()) {
        let mut hs = Harness::new(true);
        let mut hc = Harness::new(true);
        let mut seq = SequentialEngine::new(Cycle::new(40));
        let mut ct = CounterTreeEngine::new(Cycle::new(40));
        let mut now = Cycle::ZERO;
        for (page, gap) in stream {
            now += Cycle::new(gap);
            let rs = UpdateRequest { leaf: hs.geometry.leaf(page), now };
            let ds = seq.persist(rs, &mut hs.ctx());
            let rc = UpdateRequest { leaf: hc.geometry.leaf(page), now };
            let dc = ct.persist(rc, &mut hc.ctx());
            prop_assert!(dc >= ds, "counter tree {dc} beat BMT {ds}");
        }
    }
}
