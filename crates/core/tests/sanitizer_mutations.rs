//! Mutation tests: the invariant sanitizer must *fire* on seeded
//! ordering bugs and stay silent on every correct engine.
//!
//! Each test swaps a [`MutantEngine`] into a full-system run via
//! [`Simulation::override_engine`] and asserts the sanitizer reports
//! the violation kind that mutation's bug class produces. The final
//! test sweeps every correct scheme across seeds and demands a clean
//! verdict — the sanitizer earns trust in both directions.

use plp_core::engine::{Mutation, MutantEngine};
use plp_core::sanitizer::SanitizerSummary;
use plp_core::{run_benchmark, SimSetup, SystemConfig, UpdateScheme, ViolationKind};
use plp_trace::{TraceGenerator, WorkloadProfile};

const INSTRUCTIONS: u64 = 20_000;
const SEED: u64 = 11;

fn profile() -> WorkloadProfile {
    WorkloadProfile::builder("mutation")
        .base_ipc(1.0)
        .store_ppki(50.0, 20.0)
        .load_ppki(60.0)
        .locality(0.7, 128, 16.0)
        .build()
}

/// Runs the full simulator for `scheme` with `mutation` seeded into
/// the update engine and returns the sanitizer's verdict.
fn run_mutant(scheme: UpdateScheme, mutation: Mutation) -> SanitizerSummary {
    let cfg = SystemConfig::for_scheme(scheme);
    let profile = profile();
    let setup = SimSetup::for_profile(cfg.clone(), &profile, SEED).expect("valid config");
    let trace = TraceGenerator::new(profile, SEED).generate(INSTRUCTIONS);
    let mut sim = setup.simulation();
    sim.override_engine(Box::new(MutantEngine::new(
        mutation,
        cfg.mac_latency,
        cfg.bmt.levels(),
    )));
    let report = sim.run(&trace);
    assert!(report.persists > 0, "mutant run must actually persist");
    report.sanitizer
}

fn kinds(summary: &SanitizerSummary) -> Vec<ViolationKind> {
    summary.violations.iter().map(|v| v.kind).collect()
}

#[test]
fn skipped_level_mutation_is_caught() {
    let s = run_mutant(UpdateScheme::Sp, Mutation::SkipLevel(2));
    assert!(!s.is_clean(), "sanitizer must fire on a skipped level");
    assert!(
        kinds(&s).contains(&ViolationKind::SkippedLevel),
        "expected SkippedLevel among {:?}",
        kinds(&s)
    );
}

#[test]
fn reverse_walk_mutation_is_caught() {
    let s = run_mutant(UpdateScheme::Sp, Mutation::ReverseWalk);
    assert!(!s.is_clean(), "sanitizer must fire on a root-first walk");
    assert!(
        kinds(&s).contains(&ViolationKind::LevelOrder),
        "expected LevelOrder among {:?}",
        kinds(&s)
    );
}

#[test]
fn ignored_epoch_gate_mutation_is_caught() {
    let s = run_mutant(UpdateScheme::O3, Mutation::IgnoreEpochGate);
    assert!(!s.is_clean(), "sanitizer must fire on a bypassed handoff");
    let k = kinds(&s);
    assert!(
        k.contains(&ViolationKind::EpochLevelOrder),
        "expected EpochLevelOrder among {k:?}"
    );
    assert!(
        k.contains(&ViolationKind::WawHazard),
        "expected WawHazard among {k:?}"
    );
}

#[test]
fn regressing_seal_mutation_is_caught() {
    let s = run_mutant(UpdateScheme::O3, Mutation::RegressSeal);
    assert!(!s.is_clean(), "sanitizer must fire on regressing seals");
    assert!(
        kinds(&s).contains(&ViolationKind::EpochCompletionOrder),
        "expected EpochCompletionOrder among {:?}",
        kinds(&s)
    );
}

/// Every violation a mutant produces carries the scheme it ran under
/// and a populated location — the reporting side of the contract.
#[test]
fn violations_carry_scheme_and_location() {
    let s = run_mutant(UpdateScheme::Sp, Mutation::ReverseWalk);
    for v in &s.violations {
        assert_eq!(v.scheme, UpdateScheme::Sp);
        assert!(v.level > 0, "node-order violations name a tree level");
    }
}

/// The other direction: no correct engine trips the sanitizer, for any
/// scheme in the extended matrix, across several seeds.
#[test]
fn correct_engines_are_clean_across_the_matrix() {
    let profile = profile();
    for scheme in UpdateScheme::all_extended() {
        for seed in [3, 11] {
            let cfg = SystemConfig::for_scheme(scheme);
            let report = run_benchmark(&profile, &cfg, INSTRUCTIONS, seed);
            assert!(
                report.sanitizer.is_clean(),
                "{} (seed {seed}) tripped the sanitizer: {:?}",
                scheme.name(),
                report.sanitizer.violations
            );
            // A scheme that persisted anything must have been checked;
            // unordered promises nothing, so nothing is checked.
            let checked = report.sanitizer.checked_persists
                + report.sanitizer.checked_node_updates
                + report.sanitizer.checked_epochs;
            assert!(
                checked > 0 || report.persists == 0 || scheme == UpdateScheme::Unordered,
                "{} persisted {} blocks unchecked",
                scheme.name(),
                report.persists
            );
        }
    }
}
