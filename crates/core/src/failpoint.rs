//! Named failpoints on the persist path.
//!
//! The real-process crash harness needs to stop a simulation at
//! *semantically meaningful* points — mid-tuple, between tree levels,
//! around the root seal, inside an epoch handoff — and it needs the
//! stop to land at exactly the same place on every run so a verdict,
//! once observed, stays reproducible. Failpoints are therefore
//! compiled in and keyed by `(failpoint, hit_count)`, the same
//! deterministic addressing PR 4's chaos plan uses for fault
//! injection: no environment variables, no timers, no randomness.
//!
//! A [`FailpointRegistry`] is armed with one [`FailpointPlan`] and
//! threaded through the persist path via `EngineCtx` and the
//! simulation loop. Each site calls [`FailpointRegistry::hit`]; when
//! the armed point reaches its target hit count the registry either
//! records the fact (observe mode — used by golden runs and the
//! determinism tests) or prints a marker line and parks the thread
//! forever (park mode — the child half of the SIGKILL protocol, which
//! leaves the process alive but inert until the parent kills it with
//! an uncatchable signal).

use serde::{Deserialize, Serialize};

/// Marker prefix printed (and flushed) to stdout immediately before a
/// park-mode registry parks. The harness parent treats this line as
/// "the child has reached its failpoint; everything written so far is
/// in the kernel page cache" and responds with SIGKILL.
pub const PARK_MARKER: &str = "crash-harness: parked";

/// The catalog of named stop points on the persist path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Failpoint {
    /// Between the component writes of one memory tuple (data,
    /// counter, MAC, root). Only component-granular schemes (the
    /// unordered baseline) persist anything at this boundary; tuple-
    /// atomic schemes instead tear the in-flight tuple frame here.
    MidTuple,
    /// Between consecutive integrity-tree node updates inside one
    /// persist (fires at every `EngineCtx::note_update`).
    BetweenLevels,
    /// Immediately before the engine is asked to seal the root for
    /// the current persist.
    PreRootSeal,
    /// Immediately after the engine has sealed the root.
    PostRootSeal,
    /// Between block flushes while an epoch is draining (epoch-based
    /// schemes only).
    MidEpochFlush,
    /// After the epoch seal has been made durable.
    PostEpochSeal,
    /// At the top of durable recovery, after the image has been
    /// replayed but before any repair decision is made. A kill here
    /// must leave the on-device image byte-identical.
    RecoveryPreRepair,
    /// Between frame appends while recovery writes the canonical
    /// recovered image to its scratch file. A kill here leaves a
    /// partial scratch next to an untouched original.
    RecoveryMidWriteback,
    /// After the scratch image is complete but before the atomic
    /// rename that commits it over the original.
    RecoveryPreRootCommit,
    /// After the rename: the recovered image is the image.
    RecoveryPostRootCommit,
}

impl Failpoint {
    /// Every failpoint, in catalog order.
    pub const ALL: [Failpoint; 10] = [
        Failpoint::MidTuple,
        Failpoint::BetweenLevels,
        Failpoint::PreRootSeal,
        Failpoint::PostRootSeal,
        Failpoint::MidEpochFlush,
        Failpoint::PostEpochSeal,
        Failpoint::RecoveryPreRepair,
        Failpoint::RecoveryMidWriteback,
        Failpoint::RecoveryPreRootCommit,
        Failpoint::RecoveryPostRootCommit,
    ];

    /// The run-path points a live simulation can stop at — the sweep
    /// catalog of the single-kill harness.
    pub const RUN: [Failpoint; 6] = [
        Failpoint::MidTuple,
        Failpoint::BetweenLevels,
        Failpoint::PreRootSeal,
        Failpoint::PostRootSeal,
        Failpoint::MidEpochFlush,
        Failpoint::PostEpochSeal,
    ];

    /// The recovery-path points — the second-kill catalog of the
    /// double-kill harness.
    pub const RECOVERY: [Failpoint; 4] = [
        Failpoint::RecoveryPreRepair,
        Failpoint::RecoveryMidWriteback,
        Failpoint::RecoveryPreRootCommit,
        Failpoint::RecoveryPostRootCommit,
    ];

    /// Whether this point sits on the recovery path rather than the
    /// live persist path.
    pub fn is_recovery(self) -> bool {
        Failpoint::RECOVERY.contains(&self)
    }

    /// Stable kebab-case name (CLI flags, image filenames, reports).
    pub fn name(self) -> &'static str {
        match self {
            Failpoint::MidTuple => "mid-tuple",
            Failpoint::BetweenLevels => "between-levels",
            Failpoint::PreRootSeal => "pre-root-seal",
            Failpoint::PostRootSeal => "post-root-seal",
            Failpoint::MidEpochFlush => "mid-epoch-flush",
            Failpoint::PostEpochSeal => "post-epoch-seal",
            Failpoint::RecoveryPreRepair => "pre-repair",
            Failpoint::RecoveryMidWriteback => "mid-repair-writeback",
            Failpoint::RecoveryPreRootCommit => "pre-root-commit",
            Failpoint::RecoveryPostRootCommit => "post-root-commit",
        }
    }

    /// Parses a stable name back into the catalog.
    pub fn parse(name: &str) -> Option<Failpoint> {
        Failpoint::ALL.into_iter().find(|p| p.name() == name)
    }

    fn slot(self) -> usize {
        match self {
            Failpoint::MidTuple => 0,
            Failpoint::BetweenLevels => 1,
            Failpoint::PreRootSeal => 2,
            Failpoint::PostRootSeal => 3,
            Failpoint::MidEpochFlush => 4,
            Failpoint::PostEpochSeal => 5,
            Failpoint::RecoveryPreRepair => 6,
            Failpoint::RecoveryMidWriteback => 7,
            Failpoint::RecoveryPreRootCommit => 8,
            Failpoint::RecoveryPostRootCommit => 9,
        }
    }
}

/// Which `(failpoint, hit_count)` a registry is armed for — hit
/// counts are zero-based, so `hit: 0` fires on the first visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailpointPlan {
    /// The stop point.
    pub point: Failpoint,
    /// Which visit to that point fires (zero-based).
    pub hit: u64,
}

/// What happens when the armed hit is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailpointMode {
    /// Record the firing and keep running (golden runs, tests).
    Observe,
    /// Print [`PARK_MARKER`] and park the thread awaiting SIGKILL.
    Park,
}

/// Where an armed plan actually fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFailpoint {
    /// The point that fired.
    pub point: Failpoint,
    /// The hit count it fired at (equals the plan's).
    pub hit: u64,
    /// One-based index of the persist in flight when it fired (0 if
    /// it fired outside any persist).
    pub persist: u64,
}

/// Deterministic hit counter for the failpoint catalog, optionally
/// armed to stop the run at one `(failpoint, hit)`.
///
/// Counting is active at every site whether or not a plan matches, so
/// hit indices observed in one mode are valid addresses in the other.
#[derive(Debug)]
pub struct FailpointRegistry {
    plan: FailpointPlan,
    mode: FailpointMode,
    hits: [u64; 10],
    persist: u64,
    fired: Option<FiredFailpoint>,
}

impl FailpointRegistry {
    /// A registry that records the armed firing but never stops the
    /// run — for golden runs and determinism tests.
    pub fn observe(plan: FailpointPlan) -> Self {
        FailpointRegistry {
            plan,
            mode: FailpointMode::Observe,
            hits: [0; 10],
            persist: 0,
            fired: None,
        }
    }

    /// A registry that parks the thread at the armed firing, awaiting
    /// SIGKILL from the harness parent.
    pub fn park(plan: FailpointPlan) -> Self {
        FailpointRegistry {
            mode: FailpointMode::Park,
            ..FailpointRegistry::observe(plan)
        }
    }

    /// Notes that a new persist is beginning (stamps firings with a
    /// persist index).
    pub fn begin_persist(&mut self) {
        self.persist += 1;
    }

    /// One-based index of the persist currently in flight.
    pub fn persist_index(&self) -> u64 {
        self.persist
    }

    /// Would a [`hit`](Self::hit) at `point` fire right now? Lets the
    /// durable sink substitute a torn frame for the write the kill is
    /// about to land on.
    pub fn would_fire(&self, point: Failpoint) -> bool {
        self.fired.is_none() && self.plan.point == point && self.hits[point.slot()] == self.plan.hit
    }

    /// Visits `point`: counts the hit and, if the armed `(point, hit)`
    /// was just reached, fires — recording in observe mode, parking
    /// forever in park mode.
    pub fn hit(&mut self, point: Failpoint) {
        let fire = self.would_fire(point);
        self.hits[point.slot()] += 1;
        if fire {
            let fired = FiredFailpoint {
                point,
                hit: self.plan.hit,
                persist: self.persist,
            };
            self.fired = Some(fired);
            if self.mode == FailpointMode::Park {
                park_forever(&fired);
            }
        }
    }

    /// Where the armed plan fired, if it has.
    pub fn fired(&self) -> Option<FiredFailpoint> {
        self.fired
    }

    /// Total visits to `point` so far.
    pub fn hit_count(&self, point: Failpoint) -> u64 {
        self.hits[point.slot()]
    }
}

/// Prints the park marker, flushes stdout, and sleeps forever. The
/// process stays alive — holding its file-backed image exactly as the
/// failpoint left it — until the harness parent SIGKILLs it.
fn park_forever(fired: &FiredFailpoint) -> ! {
    use std::io::Write;
    let mut out = std::io::stdout();
    let _ = writeln!(
        out,
        "{PARK_MARKER} point={} hit={} persist={}",
        fired.point.name(),
        fired.hit,
        fired.persist
    );
    let _ = out.flush();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in Failpoint::ALL {
            assert_eq!(Failpoint::parse(p.name()), Some(p));
        }
        assert_eq!(Failpoint::parse("nope"), None);
    }

    #[test]
    fn catalog_splits_into_run_and_recovery() {
        assert_eq!(Failpoint::RUN.len() + Failpoint::RECOVERY.len(), Failpoint::ALL.len());
        for p in Failpoint::RUN {
            assert!(!p.is_recovery());
        }
        for p in Failpoint::RECOVERY {
            assert!(p.is_recovery());
        }
        // Slots are dense and unique across the whole catalog.
        let mut slots: Vec<usize> = Failpoint::ALL.iter().map(|p| p.slot()).collect();
        slots.sort_unstable();
        assert_eq!(slots, (0..Failpoint::ALL.len()).collect::<Vec<_>>());
    }

    #[test]
    fn observe_fires_once_at_the_armed_hit() {
        let mut reg = FailpointRegistry::observe(FailpointPlan {
            point: Failpoint::PreRootSeal,
            hit: 2,
        });
        reg.begin_persist();
        reg.hit(Failpoint::PreRootSeal); // hit 0
        assert_eq!(reg.fired(), None);
        reg.hit(Failpoint::MidTuple); // other point, ignored
        reg.begin_persist();
        reg.hit(Failpoint::PreRootSeal); // hit 1
        reg.begin_persist();
        assert!(reg.would_fire(Failpoint::PreRootSeal));
        reg.hit(Failpoint::PreRootSeal); // hit 2 — fires
        assert_eq!(
            reg.fired(),
            Some(FiredFailpoint {
                point: Failpoint::PreRootSeal,
                hit: 2,
                persist: 3,
            })
        );
        reg.hit(Failpoint::PreRootSeal); // later hits don't re-fire
        assert_eq!(reg.fired().map(|f| f.persist), Some(3));
        assert_eq!(reg.hit_count(Failpoint::PreRootSeal), 4);
        assert!(!reg.would_fire(Failpoint::PreRootSeal));
    }
}
