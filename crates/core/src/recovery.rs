//! Crash injection and the recovery checker: Invariants 1 and 2 as
//! executable checks, with the Table I / Table II failure taxonomy.

use std::collections::HashMap;

use plp_bmt::{BmtGeometry, BonsaiTree, NodeValue};
use plp_crypto::{CounterBlock, CtrEngine, DataBlock, MacEngine, MacTag, SipKey};
use plp_events::addr::BlockAddr;
use plp_events::Cycle;
use serde::{Deserialize, Serialize};

use crate::{PersistRecord, TupleTimes};

/// The durable state a crash leaves behind: NVMM contents plus the
/// persistently-stored on-chip BMT root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistImage {
    /// Ciphertexts by block address.
    pub data: HashMap<BlockAddr, DataBlock>,
    /// MAC tags by block address.
    pub macs: HashMap<BlockAddr, MacTag>,
    /// Split-counter blocks by page index.
    pub counters: HashMap<u64, CounterBlock>,
    /// The persisted BMT root register.
    pub root: NodeValue,
}

impl PersistImage {
    /// The image of a fresh system (nothing persisted, all-default
    /// tree).
    pub fn fresh(geometry: BmtGeometry, key: SipKey) -> Self {
        PersistImage {
            data: HashMap::new(),
            macs: HashMap::new(),
            counters: HashMap::new(),
            root: BonsaiTree::new(geometry, key).root(),
        }
    }

    /// Reconstructs the durable image at crash time `t` by replaying
    /// persist records component-by-component: each tuple component
    /// lands at its own [`TupleTimes`] timestamp. Correct (2SP/epoch)
    /// engines stamp all four components identically, so their images
    /// are always tuple-atomic; the `unordered` engine's divergent
    /// stamps reproduce the torn states of Tables I and II.
    pub fn at_time(
        records: &[PersistRecord],
        t: Cycle,
        geometry: BmtGeometry,
        key: SipKey,
    ) -> Self {
        let mut image = PersistImage::fresh(geometry, key);
        // Data, MACs and counters: last writer (by component time) wins.
        image.apply_components(records, t);
        image.root = Self::root_at(records, t, geometry, key);
        image
    }

    fn apply_components(&mut self, records: &[PersistRecord], t: Cycle) {
        let mut sorted: Vec<&PersistRecord> = records.iter().collect();
        sorted.sort_by_key(|r| r.times.data);
        for r in sorted.iter().filter(|r| r.times.data <= t) {
            self.data.insert(r.addr, r.ciphertext);
        }
        sorted.sort_by_key(|r| r.times.mac);
        for r in sorted.iter().filter(|r| r.times.mac <= t) {
            self.macs.insert(r.addr, r.mac);
        }
        sorted.sort_by_key(|r| r.times.counter);
        for r in sorted.iter().filter(|r| r.times.counter <= t) {
            self.counters
                .insert(r.addr.page().index(), r.counters_after.clone());
        }
    }

    /// The BMT root register after applying the root updates (in
    /// root-update order) of every record whose root persisted by `t`.
    fn root_at(
        records: &[PersistRecord],
        t: Cycle,
        geometry: BmtGeometry,
        key: SipKey,
    ) -> NodeValue {
        let mut sorted: Vec<&PersistRecord> = records.iter().collect();
        sorted.sort_by_key(|r| r.times.root);
        let mut tree = BonsaiTree::new(geometry, key);
        for r in sorted.into_iter().filter(|r| r.times.root <= t) {
            tree.update_leaf(r.addr.page().index(), &r.counters_after);
        }
        tree.root()
    }
}

/// What the crash-recovery observer expects to read back: the latest
/// completed plaintext per address.
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserverExpectation {
    /// Expected plaintexts by block address.
    pub plaintexts: HashMap<BlockAddr, DataBlock>,
}

impl ObserverExpectation {
    /// The observer state at crash time `t`: every persist whose whole
    /// tuple completed by `t` is expected back, latest completion per
    /// address winning.
    pub fn at_time(records: &[PersistRecord], t: Cycle) -> Self {
        let mut sorted: Vec<&PersistRecord> = records.iter().collect();
        sorted.sort_by_key(|r| r.completed_at());
        let mut plaintexts = HashMap::new();
        for r in sorted.into_iter().filter(|r| r.completed_at() <= t) {
            plaintexts.insert(r.addr, r.plaintext);
        }
        ObserverExpectation { plaintexts }
    }
}

/// The outcome of a recovery attempt, mirroring the failure categories
/// of Tables I and II.
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// The rebuilt BMT root did not match the persisted root register
    /// ("BMT (verification) failure").
    pub bmt_failure: bool,
    /// Blocks whose stored MAC failed verification.
    pub mac_failures: Vec<BlockAddr>,
    /// Blocks that decrypted to the wrong plaintext.
    pub plaintext_failures: Vec<BlockAddr>,
}

impl RecoveryReport {
    /// Whether recovery succeeded completely.
    pub fn is_clean(&self) -> bool {
        !self.bmt_failure && self.mac_failures.is_empty() && self.plaintext_failures.is_empty()
    }
}

impl std::fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_clean() {
            return write!(f, "recovery clean");
        }
        write!(
            f,
            "recovery failed: bmt={} mac_failures={} plaintext_failures={}",
            self.bmt_failure,
            self.mac_failures.len(),
            self.plaintext_failures.len()
        )
    }
}

/// Verifies a crash image against the observer's expectations:
/// (1) recompute the BMT over the persisted counters and compare to the
/// persisted root; (2) verify each expected block's stateful MAC;
/// (3) decrypt and compare plaintexts.
#[derive(Debug, Clone)]
pub struct RecoveryChecker {
    geometry: BmtGeometry,
    key: SipKey,
    ctr: CtrEngine,
    mac: MacEngine,
}

impl RecoveryChecker {
    /// Creates a checker for the given tree shape and master key.
    pub fn new(geometry: BmtGeometry, key: SipKey) -> Self {
        RecoveryChecker {
            geometry,
            key,
            ctr: CtrEngine::new(key),
            mac: MacEngine::new(key),
        }
    }

    /// Runs full recovery verification.
    pub fn check(&self, image: &PersistImage, expected: &ObserverExpectation) -> RecoveryReport {
        let mut report = RecoveryReport::default();

        // 1. Integrity-tree check: counters must hash to the root.
        let rebuilt = BonsaiTree::from_counters(
            self.geometry,
            self.key,
            image.counters.iter().map(|(p, c)| (*p, c)),
        );
        report.bmt_failure = rebuilt.root() != image.root;

        // 2 & 3. Per-block MAC verification and plaintext recovery.
        let mut addrs: Vec<_> = expected.plaintexts.keys().copied().collect();
        addrs.sort();
        for addr in addrs {
            let expected_plain = expected.plaintexts[&addr];
            let cipher = image.data.get(&addr).copied().unwrap_or_default();
            let counter = image
                .counters
                .get(&addr.page().index())
                .cloned()
                .unwrap_or_default()
                .value_for(addr);
            let mac = image.macs.get(&addr).copied().unwrap_or_default();
            if !self.mac.verify(&cipher, addr, counter, mac) {
                report.mac_failures.push(addr);
            }
            if self.ctr.decrypt(cipher, addr, counter) != expected_plain {
                report.plaintext_failures.push(addr);
            }
        }
        report
    }
}

/// The work a post-crash recovery pass performs — the quantity that
/// recovery-time schemes (Anubis, Osiris; §II related work) optimize.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryCost {
    /// Persisted counter blocks that must be fetched and hashed.
    pub counter_blocks: u64,
    /// Tree hash computations to rebuild the root (leaves plus every
    /// touched interior node).
    pub hash_computations: u64,
    /// Data-block MAC verifications for the observer's expected set.
    pub mac_verifications: u64,
}

impl RecoveryCost {
    /// Estimated recovery cycles given a hash/MAC unit latency,
    /// assuming fully pipelined units (one result per cycle after the
    /// first) and counter fetches overlapped with hashing.
    pub fn estimated_cycles(&self, mac_latency: u64) -> u64 {
        let ops = self.hash_computations + self.mac_verifications;
        if ops == 0 {
            0
        } else {
            mac_latency + ops
        }
    }
}

impl RecoveryChecker {
    /// Sizes the recovery pass for an image: how many counter blocks
    /// must be read back, how many tree hashes recomputed, and how many
    /// MACs verified. (The verification itself is
    /// [`RecoveryChecker::check`]; this is the cost model.)
    pub fn recovery_cost(
        &self,
        image: &PersistImage,
        expected: &ObserverExpectation,
    ) -> RecoveryCost {
        // Rebuilding the sparse tree touches, per distinct leaf, its
        // path to the root; shared ancestors are hashed once.
        let rebuilt = BonsaiTree::from_counters(
            self.geometry,
            self.key,
            image.counters.iter().map(|(p, c)| (*p, c)),
        );
        RecoveryCost {
            counter_blocks: image.counters.len() as u64,
            hash_computations: rebuilt.populated_nodes() as u64,
            mac_verifications: expected.plaintexts.len() as u64,
        }
    }
}

/// Which memory-tuple component a fault scenario manipulates (the rows
/// of Tables I and II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TupleComponent {
    /// The ciphertext `C`.
    Ciphertext,
    /// The counter `γ`.
    Counter,
    /// The MAC `M`.
    Mac,
    /// The BMT root `R`.
    Root,
}

impl TupleComponent {
    /// All four components.
    pub const ALL: [TupleComponent; 4] = [
        TupleComponent::Ciphertext,
        TupleComponent::Counter,
        TupleComponent::Mac,
        TupleComponent::Root,
    ];
}

/// Returns a copy of `records` in which record `idx`'s `component`
/// never persisted (its timestamp becomes `Cycle::MAX`) — the Table I
/// "persist failure" scenarios.
///
/// # Panics
///
/// Panics if `idx` is out of bounds.
pub fn with_component_lost(
    records: &[PersistRecord],
    idx: usize,
    component: TupleComponent,
) -> Vec<PersistRecord> {
    let mut out = records.to_vec();
    let times = &mut out[idx].times;
    match component {
        TupleComponent::Ciphertext => times.data = Cycle::MAX,
        TupleComponent::Counter => times.counter = Cycle::MAX,
        TupleComponent::Mac => times.mac = Cycle::MAX,
        TupleComponent::Root => times.root = Cycle::MAX,
    }
    out
}

/// Returns a copy of `records` in which the `component` persists of
/// records `first` and `second` are swapped in time — the Table II
/// "ordering violation" scenarios (α1 → α2 enforced for data, but the
/// chosen component persisted in the opposite order).
///
/// # Panics
///
/// Panics if either index is out of bounds.
pub fn with_component_reordered(
    records: &[PersistRecord],
    first: usize,
    second: usize,
    component: TupleComponent,
) -> Vec<PersistRecord> {
    let mut out = records.to_vec();
    let get = |t: &TupleTimes, c: TupleComponent| match c {
        TupleComponent::Ciphertext => t.data,
        TupleComponent::Counter => t.counter,
        TupleComponent::Mac => t.mac,
        TupleComponent::Root => t.root,
    };
    let set = |t: &mut TupleTimes, c: TupleComponent, v: Cycle| match c {
        TupleComponent::Ciphertext => t.data = v,
        TupleComponent::Counter => t.counter = v,
        TupleComponent::Mac => t.mac = v,
        TupleComponent::Root => t.root = v,
    };
    let a = get(&out[first].times, component);
    let b = get(&out[second].times, component);
    set(&mut out[first].times, component, b);
    set(&mut out[second].times, component, a);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EpochId, PersistId};

    fn key() -> SipKey {
        SipKey::new(1, 2)
    }

    fn geometry() -> BmtGeometry {
        BmtGeometry::new(8, 4)
    }

    /// Builds n correct, atomic persist records to distinct pages.
    fn make_records(n: u64) -> Vec<PersistRecord> {
        let ctr_engine = CtrEngine::new(key());
        let mac_engine = MacEngine::new(key());
        let mut counters: HashMap<u64, CounterBlock> = HashMap::new();
        let mut out = Vec::new();
        for i in 0..n {
            let addr = BlockAddr::new(i * 64); // one block per page
            let page = addr.page().index();
            let cb = counters.entry(page).or_default();
            let gamma = cb.bump(addr.slot_in_page()).value();
            let plaintext = DataBlock::from_u64(0x1000 + i);
            let ciphertext = ctr_engine.encrypt(plaintext, addr, gamma);
            let mac = mac_engine.compute(&ciphertext, addr, gamma);
            out.push(PersistRecord {
                id: PersistId(i),
                epoch: EpochId(0),
                addr,
                plaintext,
                ciphertext,
                counters_after: cb.clone(),
                mac,
                issued_at: Cycle::new(i * 100),
                times: TupleTimes::atomic(Cycle::new(i * 100 + 360)),
            });
        }
        out
    }

    fn check_at(records: &[PersistRecord], t: Cycle) -> RecoveryReport {
        check_against(records, records, t)
    }

    /// Builds the durable image from `faulty` records but holds it to
    /// the expectations the *program* formed (`original` records) —
    /// the Table I situation where a tuple component silently failed
    /// to persist.
    fn check_against(
        faulty: &[PersistRecord],
        original: &[PersistRecord],
        t: Cycle,
    ) -> RecoveryReport {
        let image = PersistImage::at_time(faulty, t, geometry(), key());
        let expected = ObserverExpectation::at_time(original, t);
        RecoveryChecker::new(geometry(), key()).check(&image, &expected)
    }

    #[test]
    fn atomic_records_recover_cleanly_at_any_point() {
        let records = make_records(5);
        for t in [0u64, 100, 360, 459, 460, 760, 10_000] {
            let report = check_at(&records, Cycle::new(t));
            assert!(report.is_clean(), "crash at {t}: {report}");
        }
    }

    #[test]
    fn table1_row1_lost_root_is_bmt_failure() {
        let original = make_records(3);
        let faulty = with_component_lost(&original, 2, TupleComponent::Root);
        let report = check_against(&faulty, &original, Cycle::new(10_000));
        assert!(report.bmt_failure);
        assert!(report.mac_failures.is_empty());
        assert!(report.plaintext_failures.is_empty());
    }

    #[test]
    fn table1_row2_lost_mac_is_mac_failure() {
        let original = make_records(3);
        let faulty = with_component_lost(&original, 2, TupleComponent::Mac);
        let report = check_against(&faulty, &original, Cycle::new(10_000));
        assert!(!report.bmt_failure);
        assert_eq!(report.mac_failures.len(), 1);
        assert!(report.plaintext_failures.is_empty());
    }

    #[test]
    fn table1_row3_lost_counter_is_wrong_plaintext_and_both_failures() {
        let original = make_records(3);
        let faulty = with_component_lost(&original, 2, TupleComponent::Counter);
        let report = check_against(&faulty, &original, Cycle::new(10_000));
        assert!(report.bmt_failure, "stale counter breaks the tree");
        assert_eq!(report.mac_failures.len(), 1);
        assert_eq!(report.plaintext_failures.len(), 1);
    }

    #[test]
    fn table1_row4_lost_ciphertext_is_wrong_plaintext_and_mac_failure() {
        let original = make_records(3);
        let faulty = with_component_lost(&original, 2, TupleComponent::Ciphertext);
        let report = check_against(&faulty, &original, Cycle::new(10_000));
        assert!(!report.bmt_failure);
        assert_eq!(report.mac_failures.len(), 1);
        assert_eq!(report.plaintext_failures.len(), 1);
    }

    #[test]
    fn table2_root_order_violation_fails_bmt_between_persists() {
        // α1 → α2 but R2 → R1: crash after R2 persisted, before R1.
        let records = make_records(2);
        let reordered = with_component_reordered(&records, 0, 1, TupleComponent::Root);
        // Crash between the two root persists: only α2's root applied.
        // α1's data/counter/mac persisted at 360; α2's root now at 360,
        // α1's root at 460. Crash at 400.
        let image = PersistImage::at_time(&reordered, Cycle::new(400), geometry(), key());
        // The observer legitimately expects α1 (its data tuple
        // completed first in program order).
        let expected = ObserverExpectation::at_time(&records, Cycle::new(400));
        let report = RecoveryChecker::new(geometry(), key()).check(&image, &expected);
        assert!(report.bmt_failure, "root ordering violation undetected");
    }

    #[test]
    fn table2_counter_order_violation_loses_plaintext() {
        // γ1 → γ2 violated: γ2 persisted early, γ1 late; crash between.
        let records = make_records(2);
        let reordered = with_component_reordered(&records, 0, 1, TupleComponent::Counter);
        let image = PersistImage::at_time(&reordered, Cycle::new(400), geometry(), key());
        let expected = ObserverExpectation::at_time(&records, Cycle::new(400));
        let report = RecoveryChecker::new(geometry(), key()).check(&image, &expected);
        assert!(
            !report.plaintext_failures.is_empty(),
            "P1 should not be recoverable"
        );
    }

    #[test]
    fn table2_mac_order_violation_fails_mac() {
        let records = make_records(2);
        let reordered = with_component_reordered(&records, 0, 1, TupleComponent::Mac);
        let image = PersistImage::at_time(&reordered, Cycle::new(400), geometry(), key());
        let expected = ObserverExpectation::at_time(&records, Cycle::new(400));
        let report = RecoveryChecker::new(geometry(), key()).check(&image, &expected);
        assert!(!report.mac_failures.is_empty());
    }

    #[test]
    fn observer_takes_latest_completion_per_address() {
        let mut records = make_records(1);
        // A second persist to the same address, later.
        let mut second = records[0].clone();
        second.id = PersistId(1);
        second.plaintext = DataBlock::from_u64(0xbeef);
        let ctr_engine = CtrEngine::new(key());
        let mac_engine = MacEngine::new(key());
        let mut cb = records[0].counters_after.clone();
        let gamma = cb.bump(second.addr.slot_in_page()).value();
        second.counters_after = cb;
        second.ciphertext = ctr_engine.encrypt(second.plaintext, second.addr, gamma);
        second.mac = mac_engine.compute(&second.ciphertext, second.addr, gamma);
        second.times = TupleTimes::atomic(Cycle::new(900));
        records.push(second);

        let expected = ObserverExpectation::at_time(&records, Cycle::new(10_000));
        assert_eq!(
            expected.plaintexts[&records[0].addr],
            DataBlock::from_u64(0xbeef)
        );
        let report = check_at(&records, Cycle::new(10_000));
        assert!(report.is_clean(), "{report}");
    }

    #[test]
    fn recovery_cost_scales_with_persisted_state() {
        let records = make_records(5);
        let checker = RecoveryChecker::new(geometry(), key());
        let image_small = PersistImage::at_time(&records[..1], Cycle::MAX, geometry(), key());
        let image_big = PersistImage::at_time(&records, Cycle::MAX, geometry(), key());
        let exp_small = ObserverExpectation::at_time(&records[..1], Cycle::MAX);
        let exp_big = ObserverExpectation::at_time(&records, Cycle::MAX);
        let small = checker.recovery_cost(&image_small, &exp_small);
        let big = checker.recovery_cost(&image_big, &exp_big);
        assert_eq!(small.counter_blocks, 1);
        assert_eq!(big.counter_blocks, 5);
        assert!(big.hash_computations > small.hash_computations);
        assert_eq!(big.mac_verifications, 5);
        assert!(big.estimated_cycles(40) > small.estimated_cycles(40));
        assert_eq!(RecoveryCost::default().estimated_cycles(40), 0);
    }

    #[test]
    fn fresh_image_is_clean() {
        let image = PersistImage::fresh(geometry(), key());
        let report =
            RecoveryChecker::new(geometry(), key()).check(&image, &ObserverExpectation::default());
        assert!(report.is_clean());
        assert_eq!(report.to_string(), "recovery clean");
    }
}
