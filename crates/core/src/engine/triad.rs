//! Relaxed tree-level persistence from the related literature: the
//! `triad_nvm` scheme.
//!
//! Each persist strictly updates the leaf plus the configured number
//! of deepest BMT levels — serialized, like `sp`, because the strict
//! slice carries the crash-consistency claim — and stops there. The
//! levels above the persisted floor (the root included) live in the
//! metadata cache and are flushed lazily off the critical path, so
//! they cost the persist nothing and are *not* reported as node
//! updates: per persist this engine performs strictly fewer updates
//! than `sp`'s full walk, which is exactly the runtime saving the
//! design buys.
//!
//! What the relaxation costs is visible elsewhere: recovery must
//! rebuild the un-persisted upper slice (see
//! `RecoveryManager`'s suffix-rebuild strategy), and a crash inside
//! the lazy-flush window strands a data/counter pair whose MAC never
//! became durable — a *detected* loss, pinned by the crash harness.

use plp_events::Cycle;

use super::{EngineCtx, UpdateRequest};

/// Strictly persists the deepest `persisted_levels` of the tree per
/// persist; relaxes everything above into the metadata cache.
#[derive(Debug, Clone)]
pub struct TriadNvmEngine {
    mac_latency: Cycle,
    /// Shallowest strictly-persisted level (level 1 = root). The walk
    /// covers levels `floor..=levels` and stops.
    floor: u32,
    busy_until: Cycle,
}

impl TriadNvmEngine {
    /// Creates an idle engine persisting levels `floor..=levels`.
    pub fn new(mac_latency: Cycle, floor: u32) -> Self {
        TriadNvmEngine {
            mac_latency,
            floor,
            busy_until: Cycle::ZERO,
        }
    }

    /// Schedules the truncated leaf-up walk; returns the time the
    /// strict slice (the triad persist point) is done. Relaxed levels
    /// are neither walked nor counted.
    pub fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        let mut t = req.now.max(self.busy_until);
        for (label, level) in ctx.geometry.walk_up(req.leaf) {
            if level < self.floor {
                break;
            }
            t = ctx.node_ready(label, t) + self.mac_latency;
            ctx.note_update(label, level, t);
        }
        self.busy_until = t;
        t
    }

    /// When the engine's last scheduled persist completes.
    pub fn drained_at(&self) -> Cycle {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::CtxHarness;

    #[test]
    fn truncated_walk_costs_persisted_levels_only() {
        let mut h = CtxHarness::ideal();
        // 4-level tree, persist the 2 deepest levels: floor = 3.
        let mut e = TriadNvmEngine::new(h.mac, 3);
        let done = e.persist(h.req(0, 0), &mut h.tapped_ctx());
        // 2 levels x 40 cycles, not sp's 4 x 40.
        assert_eq!(done, Cycle::new(80));
        assert_eq!(h.stats.node_updates, 2);
        // The tap sees only the strict slice, deepest levels first.
        assert_eq!(h.tap.len(), 2);
        assert_eq!(h.tap[0].level, 4);
        assert_eq!(h.tap[1].level, 3);
    }

    #[test]
    fn persists_serialize_like_sp_over_the_slice() {
        let mut h = CtxHarness::ideal();
        let mut e = TriadNvmEngine::new(h.mac, 3);
        let d1 = e.persist(h.req(0, 0), &mut h.ctx());
        let d2 = e.persist(h.req(100, 0), &mut h.ctx());
        assert_eq!(d1, Cycle::new(80));
        assert_eq!(d2, Cycle::new(160), "second persist must wait");
        assert_eq!(e.drained_at(), d2);
    }

    #[test]
    fn node_updates_stay_below_sequential() {
        use crate::engine::SequentialEngine;
        let mut h1 = CtxHarness::ideal();
        let mut triad = TriadNvmEngine::new(h1.mac, 3);
        for i in 0..20 {
            let _ = triad.persist(h1.req(i % 8, 0), &mut h1.ctx());
        }
        let mut h2 = CtxHarness::ideal();
        let mut sp = SequentialEngine::new(h2.mac);
        for i in 0..20 {
            let _ = sp.persist(h2.req(i % 8, 0), &mut h2.ctx());
        }
        assert!(
            h1.stats.node_updates < h2.stats.node_updates,
            "triad {} must update fewer nodes than sp {}",
            h1.stats.node_updates,
            h2.stats.node_updates
        );
    }

    #[test]
    fn floor_one_degenerates_to_the_full_walk() {
        let mut h = CtxHarness::ideal();
        let mut e = TriadNvmEngine::new(h.mac, 1);
        let done = e.persist(h.req(0, 0), &mut h.ctx());
        assert_eq!(done, Cycle::new(160));
        assert_eq!(h.stats.node_updates, 4);
    }
}
