//! §V-D extension: strict persistency on an SGX-style *counter tree*.
//!
//! Unlike a Bonsai Merkle Tree — where interior nodes are
//! reconstructible and only the root must persist — an SGX counter
//! tree computes each child's MAC from its *parent counter*, so crash
//! recovery needs the entire update path, leaf to root, durable and
//! mutually consistent. Invariants 1 and 2 expand to every node on the
//! path, and each persist must write `levels` tree blocks to NVM
//! instead of one counter block.
//!
//! The paper stops at describing this cost ("we focus only on BMT due
//! to the extra cost incurred by the counter tree"); this engine makes
//! it measurable: a sequential 2SP walk whose completion additionally
//! waits for the whole path to drain to the NVM device. The matching
//! ablation lives in the `sgx_compare` harness binary.

use plp_events::Cycle;

use super::{EngineCtx, UpdateRequest};
use crate::meta::bmt_node_block_addr;

/// Strict-persistency updates over an SGX-style counter tree.
#[derive(Debug, Clone, Default)]
pub struct CounterTreeEngine {
    mac_latency: Cycle,
    busy_until: Cycle,
    drained: Cycle,
}

impl CounterTreeEngine {
    /// Creates an idle engine.
    pub fn new(mac_latency: Cycle) -> Self {
        CounterTreeEngine {
            mac_latency,
            busy_until: Cycle::ZERO,
            drained: Cycle::ZERO,
        }
    }

    /// Schedules the sequential walk *and* the per-level NVM persists;
    /// returns the time the whole path is durable.
    pub fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        let mut t = req.now.max(self.busy_until);
        let mut path_durable = t;
        for (label, level) in ctx.geometry.walk_up(req.leaf) {
            t = ctx.node_ready(label, t) + self.mac_latency;
            ctx.note_update(label, level, t);
            // Every node on the path must persist (shadow-copy writes
            // in a real design; modelled as posted NVM writes whose
            // completion gates the persist).
            let written = ctx.nvm.write(t, bmt_node_block_addr(label));
            path_durable = path_durable.max(written);
        }
        self.busy_until = t;
        let done = t.max(path_durable);
        self.drained = self.drained.max(done);
        done
    }

    /// When the engine's last scheduled persist completes.
    pub fn drained_at(&self) -> Cycle {
        self.drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::CtxHarness;

    #[test]
    fn persist_waits_for_whole_path_to_drain() {
        let mut h = CtxHarness::ideal();
        let mut e = CounterTreeEngine::new(h.mac);
        let done = e.persist(h.req(0, 0), &mut h.ctx());
        // The MAC walk alone is 160 cycles; each node write costs 600
        // cycles of NVM write time on top, so completion is far later.
        assert!(done > Cycle::new(160), "path drain ignored: {done}");
        assert_eq!(h.stats.node_updates, 4);
        assert_eq!(h.nvm.stats().writes + h.nvm.stats().writes_combined, 4);
    }

    #[test]
    fn costs_more_than_bmt_sequential() {
        use crate::engine::SequentialEngine;
        let mut h1 = CtxHarness::ideal();
        let mut ctree = CounterTreeEngine::new(h1.mac);
        let mut last_ctree = Cycle::ZERO;
        for i in 0..20 {
            last_ctree = ctree.persist(h1.req(i % 8, 0), &mut h1.ctx());
        }
        let mut h2 = CtxHarness::ideal();
        let mut bmt = SequentialEngine::new(h2.mac);
        let mut last_bmt = Cycle::ZERO;
        for i in 0..20 {
            last_bmt = bmt.persist(h2.req(i % 8, 0), &mut h2.ctx());
        }
        assert!(
            last_ctree > last_bmt,
            "counter tree {last_ctree} must cost more than BMT {last_bmt}"
        );
    }

    #[test]
    fn repeated_paths_benefit_from_write_combining() {
        let mut h = CtxHarness::ideal();
        let mut e = CounterTreeEngine::new(h.mac);
        for _ in 0..4 {
            let req = h.req(3, 0);
            let _ = e.persist(req, &mut h.ctx());
        }
        // Re-persisting the same path while earlier writes are pending
        // merges in the write queue instead of re-writing the media.
        assert!(h.nvm.stats().writes_combined > 0);
        assert!(e.drained_at() > Cycle::ZERO);
    }
}
