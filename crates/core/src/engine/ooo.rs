//! PLP mechanism 2: out-of-order BMT updates within an epoch (epoch
//! persistency).

use plp_events::Cycle;

use super::{level_slot, EngineCtx, UpdateRequest};

/// The ETT/PTT engine of §V-B: persists of the *same* epoch update the
/// tree out of order through fully pipelined MAC units (§IV-B1 proves
/// common-ancestor updates are WAW-safe); *across* epochs, each tree
/// level is handed from epoch to epoch in order, so cross-epoch
/// Invariant 2 holds.
///
/// Two throughput effects distinguish this from the in-order pipeline:
/// a BMT-cache miss delays only its own persist (Fig. 4b), and MAC
/// computations issue one per cycle instead of one per level-beat — at
/// realistic persist rates that initiation interval never binds, so
/// updates are modelled as pure latency after their gates.
#[derive(Debug, Clone)]
pub struct OooEngine {
    mac_latency: Cycle,
    /// Per-level completion of the *previous* epoch: the ETT's level
    /// authorization (index = level - 1).
    prev_epoch_level_done: Vec<Cycle>,
    /// Per-level max completion of the current epoch.
    cur_epoch_level_max: Vec<Cycle>,
    /// Completion time of each sealed epoch, in order.
    epoch_completions: Vec<Cycle>,
    /// ETT admission floor for the current epoch.
    epoch_floor: Cycle,
    ett_entries: usize,
}

impl OooEngine {
    /// Creates an idle engine for a `levels`-deep tree allowing
    /// `ett_entries` concurrent epochs.
    ///
    /// # Panics
    ///
    /// Panics if `ett_entries` is zero.
    pub fn new(mac_latency: Cycle, levels: u32, ett_entries: usize) -> Self {
        assert!(ett_entries > 0, "ETT needs at least one entry");
        OooEngine {
            mac_latency,
            prev_epoch_level_done: vec![Cycle::ZERO; level_slot(levels)],
            cur_epoch_level_max: vec![Cycle::ZERO; level_slot(levels)],
            epoch_completions: Vec::new(),
            epoch_floor: Cycle::ZERO,
            ett_entries,
        }
    }

    /// Schedules one persist's walk; returns its own root-done time
    /// (persists of the same epoch complete in any order).
    pub fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        let mut t = req.now.max(self.epoch_floor);
        for (label, level) in ctx.geometry.walk_up(req.leaf) {
            t = self.update_node(label, level, t, ctx);
        }
        t
    }

    /// Schedules one node update at `at` under the epoch's constraints;
    /// shared with the coalescing engine. Callers pass the level they
    /// already track for the walk.
    pub(super) fn update_node(
        &mut self,
        label: plp_bmt::NodeLabel,
        level: u32,
        at: Cycle,
        ctx: &mut EngineCtx<'_>,
    ) -> Cycle {
        let slot = level_slot(level - 1);
        let gate = at.max(self.prev_epoch_level_done[slot]);
        let ready = ctx.node_ready(label, gate);
        let done = ready + self.mac_latency;
        ctx.note_update(label, level, done);
        self.cur_epoch_level_max[slot] = self.cur_epoch_level_max[slot].max(done);
        done
    }

    /// Floor applied to the current epoch's persists (exposed to the
    /// coalescing engine).
    pub(super) fn floor(&self) -> Cycle {
        self.epoch_floor
    }

    /// Seals the current epoch: per-level completions become the next
    /// epoch's authorization levels, and the ETT capacity sets the next
    /// epoch's admission floor. Returns the sealed epoch's completion.
    pub fn seal_epoch(&mut self) -> Cycle {
        // Epoch completion: all its updates done; monotonic so the
        // crash-recovery observer sees epochs complete in order.
        let mut completion = self
            .cur_epoch_level_max
            .iter()
            .copied()
            .fold(Cycle::ZERO, Cycle::max);
        if let Some(&last) = self.epoch_completions.last() {
            completion = completion.max(last);
        }
        for (prev, cur) in self
            .prev_epoch_level_done
            .iter_mut()
            .zip(&mut self.cur_epoch_level_max)
        {
            *prev = (*prev).max(*cur);
            *cur = Cycle::ZERO;
        }
        self.epoch_completions.push(completion);
        let n = self.epoch_completions.len();
        self.epoch_floor = if n >= self.ett_entries {
            self.epoch_completions[n - self.ett_entries]
        } else {
            Cycle::ZERO
        };
        completion
    }

    /// When the engine's last scheduled work completes.
    pub fn drained_at(&self) -> Cycle {
        let cur = self
            .cur_epoch_level_max
            .iter()
            .copied()
            .fold(Cycle::ZERO, Cycle::max);
        let sealed = self
            .epoch_completions
            .last()
            .copied()
            .unwrap_or(Cycle::ZERO);
        cur.max(sealed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::CtxHarness;

    #[test]
    fn intra_epoch_updates_overlap() {
        let mut h = CtxHarness::ideal();
        let mut e = OooEngine::new(h.mac, 4, 2);
        let mut last = Cycle::ZERO;
        for i in 0..8 {
            last = last.max(e.persist(h.req(i * 64, 0), &mut h.ctx()));
        }
        // 32 node updates through a 1/cycle unit, 4 serial per persist:
        // far below the in-order pipeline's 160 + 7*40 = 440.
        assert!(last < Cycle::new(240), "got {last}");
    }

    #[test]
    fn cross_epoch_levels_are_ordered() {
        let mut h = CtxHarness::ideal();
        let mut e = OooEngine::new(h.mac, 4, 2);
        let d1 = e.persist(h.req(0, 0), &mut h.ctx());
        let c1 = e.seal_epoch();
        assert_eq!(c1, d1);
        // Epoch 2's persist to a disjoint subtree still cannot touch
        // any level before epoch 1 finished that level.
        let d2 = e.persist(h.req(511, 0), &mut h.ctx());
        // Epoch 1 finished the leaf level at t=40, so epoch 2's leaf
        // update starts at 40; its root waits for epoch 1's root (160).
        assert!(d2 >= c1 + Cycle::new(40), "root handoff violated: {d2}");
    }

    #[test]
    fn ett_capacity_limits_concurrent_epochs() {
        let mut h = CtxHarness::ideal();
        let mut e = OooEngine::new(h.mac, 4, 2);
        let mut completions = Vec::new();
        for epoch in 0..5 {
            let _ = e.persist(h.req(epoch * 8, 0), &mut h.ctx());
            completions.push(e.seal_epoch());
        }
        // With a 2-entry ETT, epoch k's work cannot begin before epoch
        // k-2 completed: completions strictly increase.
        for w in completions.windows(2) {
            assert!(w[1] > w[0]);
        }
        // Epoch 3 (index 2) must start at or after epoch 1's
        // completion; its own work adds at least one MAC latency.
        assert!(completions[2] >= completions[0] + Cycle::new(40));
    }

    #[test]
    fn epoch_completions_monotonic_even_when_empty() {
        let mut h = CtxHarness::ideal();
        let mut e = OooEngine::new(h.mac, 4, 2);
        let _ = e.persist(h.req(0, 0), &mut h.ctx());
        let c1 = e.seal_epoch();
        // An empty epoch still completes no earlier than its
        // predecessor.
        let c2 = e.seal_epoch();
        assert!(c2 >= c1);
        assert_eq!(e.drained_at(), c2);
    }

    #[test]
    fn miss_delays_only_its_own_persist() {
        // Fig. 4b: persist A misses in the BMT cache; persist B to a
        // different subtree is not delayed behind A's fetch.
        let mut h = CtxHarness::cold();
        let mut e = OooEngine::new(h.mac, 4, 2);
        let a = e.persist(h.req(0, 0), &mut h.ctx());
        let b = e.persist(h.req(8, 0), &mut h.ctx());
        // B also misses (cold), but in an *in-order* pipeline B's leaf
        // could not even start until A's leaf stage completed post-
        // fetch. Here both proceed concurrently: B completes within a
        // fetch+walk of its own, not 2x.
        assert!(b < a + a.saturating_sub(Cycle::ZERO), "B serialized behind A");
    }
}
