//! The sequential (baseline) update engine.

use plp_events::Cycle;

use super::{EngineCtx, UpdateRequest};

/// Fully sequential leaf-to-root updates: one persist at a time, one
/// level at a time (§IV-A1's baseline atomic persist, and the path
/// `secure_WB` evictions take).
///
/// At the paper's defaults (9 levels × 40-cycle MAC) each persist
/// occupies the engine for at least 360 cycles, which is exactly the
/// bottleneck §VII's gamess arithmetic demonstrates.
#[derive(Debug, Clone, Default)]
pub struct SequentialEngine {
    mac_latency: Cycle,
    busy_until: Cycle,
}

impl SequentialEngine {
    /// Creates an idle engine.
    pub fn new(mac_latency: Cycle) -> Self {
        SequentialEngine {
            mac_latency,
            busy_until: Cycle::ZERO,
        }
    }

    /// Schedules the full leaf-to-root walk; returns the root-done
    /// time.
    pub fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        let mut t = req.now.max(self.busy_until);
        for (label, level) in ctx.geometry.walk_up(req.leaf) {
            t = ctx.node_ready(label, t) + self.mac_latency;
            ctx.note_update(label, level, t);
        }
        self.busy_until = t;
        t
    }

    /// When the engine's last scheduled persist completes.
    pub fn drained_at(&self) -> Cycle {
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::CtxHarness;

    #[test]
    fn full_walk_costs_levels_times_mac() {
        let mut h = CtxHarness::ideal();
        let mut e = SequentialEngine::new(h.mac);
        let req = h.req(0, 0);
        let done = e.persist(req, &mut h.ctx());
        // 4 levels x 40 cycles.
        assert_eq!(done, Cycle::new(160));
        assert_eq!(h.stats.node_updates, 4);
    }

    #[test]
    fn persists_serialize() {
        let mut h = CtxHarness::ideal();
        let mut e = SequentialEngine::new(h.mac);
        let r1 = h.req(0, 0);
        let r2 = h.req(100, 0);
        let d1 = e.persist(r1, &mut h.ctx());
        let d2 = e.persist(r2, &mut h.ctx());
        assert_eq!(d1, Cycle::new(160));
        assert_eq!(d2, Cycle::new(320), "second persist must wait");
        assert_eq!(e.drained_at(), d2);
    }

    #[test]
    fn idle_gap_resets_start() {
        let mut h = CtxHarness::ideal();
        let mut e = SequentialEngine::new(h.mac);
        e.persist(h.req(0, 0), &mut h.ctx());
        let late = h.req(1, 10_000);
        let done = e.persist(late, &mut h.ctx());
        assert_eq!(done, Cycle::new(10_160));
    }

    #[test]
    fn cold_bmt_cache_adds_fetches() {
        let mut h = CtxHarness::cold();
        let mut e = SequentialEngine::new(h.mac);
        let done_cold = e.persist(h.req(0, 0), &mut h.ctx());
        assert!(done_cold > Cycle::new(160), "misses must add latency");
        assert!(h.stats.bmt_fetches > 0);
        // A second persist on the same path hits the now-warm cache.
        let start = done_cold;
        let fetches_before = h.stats.bmt_fetches;
        let done_warm = e.persist(h.req(0, start.get()), &mut h.ctx());
        assert_eq!(done_warm, start + Cycle::new(160));
        assert_eq!(h.stats.bmt_fetches, fetches_before);
    }
}
