//! The `unordered` strawman: write-through persists without root
//! ordering.

use plp_events::Cycle;

use super::{EngineCtx, UpdateRequest};

/// Unordered BMT updates (Table IV's strawman): every persist walks
/// leaf-to-root with no cross-persist ordering at all — not even at
/// the root. MAC computations are fully pipelined; with a
/// one-per-cycle initiation interval the unit's throughput never binds
/// at realistic persist rates, so updates are modelled as pure latency.
///
/// It is fast, but it violates Invariant 2: two persists' root updates
/// can complete out of persist order, so a crash between them can
/// leave a BMT that fails verification on recovery. The recovery tests
/// demonstrate exactly that failure; this engine exists to quantify
/// how much an ordering-free design under-estimates the cost of
/// correctness. (The relaxed-tree design from the related literature,
/// which Table IV's prose loosely gestures at, is modelled faithfully
/// by [`crate::engine::TriadNvmEngine`] instead: it persists a strict
/// lower slice of the tree rather than abandoning ordering wholesale.)
#[derive(Debug, Clone)]
pub struct UnorderedEngine {
    mac_latency: Cycle,
    drained: Cycle,
}

impl UnorderedEngine {
    /// Creates an idle engine.
    pub fn new(mac_latency: Cycle) -> Self {
        UnorderedEngine {
            mac_latency,
            drained: Cycle::ZERO,
        }
    }

    /// Schedules the unordered walk; returns this persist's own
    /// root-update time (no ordering with other persists).
    pub fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        let mut t = req.now;
        for (label, level) in ctx.geometry.walk_up(req.leaf) {
            t = ctx.node_ready(label, t) + self.mac_latency;
            ctx.note_update(label, level, t);
        }
        self.drained = self.drained.max(t);
        t
    }

    /// When the engine's last scheduled persist completes.
    pub fn drained_at(&self) -> Cycle {
        self.drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::CtxHarness;

    #[test]
    fn single_walk_latency() {
        let mut h = CtxHarness::ideal();
        let mut e = UnorderedEngine::new(h.mac);
        let done = e.persist(h.req(0, 0), &mut h.ctx());
        // 4 levels serial along the persist's own path.
        assert_eq!(done, Cycle::new(160));
    }

    #[test]
    fn bursts_overlap_completely() {
        let mut h = CtxHarness::ideal();
        let mut e = UnorderedEngine::new(h.mac);
        let mut last = Cycle::ZERO;
        for i in 0..10 {
            last = last.max(e.persist(h.req((i * 64) % 512, 0), &mut h.ctx()));
        }
        // All ten walks overlap: 160, not 1600.
        assert_eq!(last, Cycle::new(160));
        assert_eq!(e.drained_at(), last);
    }

    #[test]
    fn roots_can_complete_out_of_order() {
        // An older persist stalling on a cold fetch finishes *after* a
        // younger one on a warm path — the Invariant 2 violation.
        let mut h = CtxHarness::cold();
        let mut e = UnorderedEngine::new(h.mac);
        let older = e.persist(h.req(0, 0), &mut h.ctx()); // cold fetches
        let younger = e.persist(h.req(0, 1), &mut h.ctx()); // warm path
        assert!(
            younger < older,
            "younger {younger} should beat the stalled older {older}"
        );
    }

    #[test]
    fn zero_latency_mac_is_free() {
        let mut h = CtxHarness::ideal();
        h.mac = Cycle::ZERO;
        let mut e = UnorderedEngine::new(Cycle::ZERO);
        let done = e.persist(h.req(0, 123), &mut h.ctx());
        assert_eq!(done, Cycle::new(123));
    }
}
