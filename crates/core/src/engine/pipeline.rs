//! PLP mechanism 1: in-order pipelined BMT updates (strict
//! persistency).

use std::collections::VecDeque;

use plp_events::Cycle;

use super::{level_slot, EngineCtx, UpdateRequest};

/// The PTT-scheduled pipeline of §V-A: a younger persist may update a
/// BMT level only after the older persist has completed its update of
/// that level, so persists march up the tree one level apart and the
/// BMT root is still updated in persist order (Invariant 2).
///
/// Steady-state throughput is one persist per MAC latency instead of
/// one per `levels × MAC` — the paper's 3.4× improvement over `sp`.
/// A BMT-cache miss at any stage stalls the whole pipe behind it
/// (Fig. 4a), which is what the epoch engines relax.
#[derive(Debug, Clone)]
pub struct PipelinedEngine {
    mac_latency: Cycle,
    /// Completion time of the most recent update at each level
    /// (index = level - 1; level 1 is the root).
    level_free: Vec<Cycle>,
    /// Root-completion times of in-flight persists, bounded by the PTT
    /// capacity.
    inflight: VecDeque<Cycle>,
    ptt_entries: usize,
}

impl PipelinedEngine {
    /// Creates an idle pipeline for a `levels`-deep tree with a
    /// `ptt_entries`-entry persist tracking table.
    ///
    /// # Panics
    ///
    /// Panics if `ptt_entries` is zero.
    pub fn new(mac_latency: Cycle, levels: u32, ptt_entries: usize) -> Self {
        assert!(ptt_entries > 0, "PTT needs at least one entry");
        PipelinedEngine {
            mac_latency,
            level_free: vec![Cycle::ZERO; level_slot(levels)],
            // Admission caps occupancy at ptt_entries (+1 transient),
            // so one reservation makes the PTT allocation-free.
            inflight: VecDeque::with_capacity(ptt_entries + 1),
            ptt_entries,
        }
    }

    fn ptt_admission(&mut self, now: Cycle) -> Cycle {
        while self.inflight.front().is_some_and(|&t| t <= now) {
            self.inflight.pop_front();
        }
        if self.inflight.len() < self.ptt_entries {
            now
        } else {
            // Full: wait for the oldest in-flight persist to leave.
            // The constructor guarantees capacity >= 1, so a full PTT
            // is never empty; the fallback keeps this total anyway.
            self.inflight.pop_front().unwrap_or(now).max(now)
        }
    }

    /// Schedules the pipelined walk; returns the in-order root-done
    /// time.
    pub fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        let mut t = self.ptt_admission(req.now);
        for (label, level) in ctx.geometry.walk_up(req.leaf) {
            let slot = level_slot(level - 1);
            // Stage entry: after our previous stage and after the older
            // persist has left this level (in-order guarantee).
            let gate = t.max(self.level_free[slot]);
            let start = ctx.node_ready(label, gate);
            let done = start + self.mac_latency;
            self.level_free[slot] = done;
            ctx.note_update(label, level, done);
            t = done;
        }
        self.inflight.push_back(t);
        t
    }

    /// When the engine's last scheduled persist completes.
    pub fn drained_at(&self) -> Cycle {
        self.level_free
            .iter()
            .copied()
            .fold(Cycle::ZERO, Cycle::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::CtxHarness;

    #[test]
    fn single_persist_same_as_sequential() {
        let mut h = CtxHarness::ideal();
        let mut e = PipelinedEngine::new(h.mac, 4, 64);
        let done = e.persist(h.req(0, 0), &mut h.ctx());
        assert_eq!(done, Cycle::new(160));
    }

    #[test]
    fn steady_state_throughput_is_one_per_mac() {
        let mut h = CtxHarness::ideal();
        let mut e = PipelinedEngine::new(h.mac, 4, 64);
        let mut completions = Vec::new();
        for i in 0..10 {
            // Distinct subtrees so only the root is shared.
            completions.push(e.persist(h.req((i * 64) % 512, 0), &mut h.ctx()));
        }
        // First completes at 160; each subsequent one 40 cycles later.
        for (i, c) in completions.iter().enumerate() {
            assert_eq!(*c, Cycle::new(160 + 40 * i as u64));
        }
    }

    #[test]
    fn root_updates_in_persist_order() {
        let mut h = CtxHarness::ideal();
        let mut e = PipelinedEngine::new(h.mac, 4, 64);
        let mut last = Cycle::ZERO;
        for i in 0..20 {
            let done = e.persist(h.req(i % 5, 0), &mut h.ctx());
            assert!(done > last, "root order violated at persist {i}");
            last = done;
        }
    }

    #[test]
    fn ptt_capacity_throttles() {
        let mut h = CtxHarness::ideal();
        let mut tight = PipelinedEngine::new(h.mac, 4, 2);
        let mut c_tight = Vec::new();
        for i in 0..6 {
            c_tight.push(tight.persist(h.req(i * 64, 0), &mut h.ctx()));
        }
        let mut h2 = CtxHarness::ideal();
        let mut wide = PipelinedEngine::new(h2.mac, 4, 64);
        let mut c_wide = Vec::new();
        for i in 0..6 {
            c_wide.push(wide.persist(h2.req(i * 64, 0), &mut h2.ctx()));
        }
        assert!(
            c_tight.last().unwrap() > c_wide.last().unwrap(),
            "a 2-entry PTT must throttle relative to 64 entries"
        );
    }

    #[test]
    fn pipeline_beats_sequential_on_a_burst() {
        use crate::engine::SequentialEngine;
        let mut h = CtxHarness::ideal();
        let mut pipe = PipelinedEngine::new(h.mac, 4, 64);
        let mut last_pipe = Cycle::ZERO;
        for i in 0..50 {
            last_pipe = pipe.persist(h.req(i * 64 % 512, 0), &mut h.ctx());
        }
        let mut h2 = CtxHarness::ideal();
        let mut seq = SequentialEngine::new(h2.mac);
        let mut last_seq = Cycle::ZERO;
        for i in 0..50 {
            last_seq = seq.persist(h2.req(i * 64 % 512, 0), &mut h2.ctx());
        }
        // The paper reports ~3.4x; with 4 levels the asymptotic ratio
        // is 4x. Require at least 2x on this short burst.
        assert!(last_seq.get() > 2 * last_pipe.get());
    }

    #[test]
    fn drained_at_reflects_last_root() {
        let mut h = CtxHarness::ideal();
        let mut e = PipelinedEngine::new(h.mac, 4, 64);
        let done = e.persist(h.req(3, 100), &mut h.ctx());
        assert_eq!(e.drained_at(), done);
    }
}
