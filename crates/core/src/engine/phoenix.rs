//! Persistently secure counter tree with a dual-copy root commit: the
//! `phoenix` scheme from the related literature.
//!
//! Where the paper's BMT schemes persist only the root (recovery
//! rebuilds interior nodes from counters), `phoenix` writes *every*
//! node of the update path through to NVM and then commits the root
//! twice — a working copy and a shadow copy in a distinct device
//! block, so one of the two is always intact whatever instant a crash
//! lands on. The persist is complete only when the whole path and
//! both root copies are durable.
//!
//! That buys the other end of the runtime-vs-recovery frontier from
//! `triad_nvm`: the highest per-persist cost in the zoo (a serialized
//! walk, per-node NVM writes, plus the double root commit) in exchange
//! for recovery that rebuilds nothing — the `RecoveryManager`'s
//! shadow-root strategy just cross-checks the two root copies.

use plp_events::Cycle;

use super::{EngineCtx, UpdateRequest};
use crate::meta::{bmt_node_block_addr, shadow_root_block_addr};

/// Strict persistency where the whole update path and a dual-copy
/// root persist on every store.
#[derive(Debug, Clone, Default)]
pub struct PhoenixEngine {
    mac_latency: Cycle,
    busy_until: Cycle,
    drained: Cycle,
}

impl PhoenixEngine {
    /// Creates an idle engine.
    pub fn new(mac_latency: Cycle) -> Self {
        PhoenixEngine {
            mac_latency,
            busy_until: Cycle::ZERO,
            drained: Cycle::ZERO,
        }
    }

    /// Schedules the sequential walk, the per-level NVM persists and
    /// the dual-copy root commit; returns the time everything is
    /// durable.
    pub fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        let mut t = req.now.max(self.busy_until);
        let mut path_durable = t;
        for (label, level) in ctx.geometry.walk_up(req.leaf) {
            t = ctx.node_ready(label, t) + self.mac_latency;
            ctx.note_update(label, level, t);
            let written = ctx.nvm.write(t, bmt_node_block_addr(label));
            path_durable = path_durable.max(written);
        }
        // Dual-copy commit: the shadow root is written only after the
        // working path is fully durable, so a crash can tear at most
        // one of the two copies.
        let shadow = ctx.nvm.write(t.max(path_durable), shadow_root_block_addr());
        self.busy_until = t;
        let done = t.max(path_durable).max(shadow);
        self.drained = self.drained.max(done);
        done
    }

    /// When the engine's last scheduled persist completes.
    pub fn drained_at(&self) -> Cycle {
        self.drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::CtxHarness;

    #[test]
    fn persist_waits_for_path_and_shadow_commit() {
        let mut h = CtxHarness::ideal();
        let mut e = PhoenixEngine::new(h.mac);
        let done = e.persist(h.req(0, 0), &mut h.ctx());
        // The MAC walk alone is 160 cycles; four path writes plus the
        // shadow commit put completion far later.
        assert!(done > Cycle::new(160), "durability ignored: {done}");
        assert_eq!(h.stats.node_updates, 4);
        // Four path blocks plus the shadow root block.
        assert_eq!(h.nvm.stats().writes + h.nvm.stats().writes_combined, 5);
    }

    #[test]
    fn costs_more_than_the_counter_tree() {
        use crate::engine::CounterTreeEngine;
        let mut h1 = CtxHarness::ideal();
        let mut phoenix = PhoenixEngine::new(h1.mac);
        let mut last_phoenix = Cycle::ZERO;
        for i in 0..20 {
            last_phoenix = phoenix.persist(h1.req(i % 8, 0), &mut h1.ctx());
        }
        let mut h2 = CtxHarness::ideal();
        let mut ctree = CounterTreeEngine::new(h2.mac);
        let mut last_ctree = Cycle::ZERO;
        for i in 0..20 {
            last_ctree = ctree.persist(h2.req(i % 8, 0), &mut h2.ctx());
        }
        assert!(
            last_phoenix >= last_ctree,
            "the dual-copy commit {last_phoenix} cannot be cheaper than sp_ctree {last_ctree}"
        );
    }

    #[test]
    fn shadow_commit_serializes_after_the_path() {
        let mut h = CtxHarness::ideal();
        let mut e = PhoenixEngine::new(h.mac);
        let d1 = e.persist(h.req(0, 0), &mut h.ctx());
        let d2 = e.persist(h.req(100, 0), &mut h.ctx());
        // The MAC walks serialize through the engine; the dual-copy
        // shadow writes may *write-combine* in the device queue, so
        // completions are monotone but not necessarily distinct.
        assert!(d2 >= d1, "persists must not reorder: {d1} then {d2}");
        assert_eq!(e.drained_at(), d2);
        // Both persists walked the full path.
        assert_eq!(h.stats.node_updates, 8);
    }
}
