//! BMT update engines: the timing models of §IV's four update schemes
//! (plus the `unordered` strawman).
//!
//! Every engine answers one question per persist: *when is this
//! persist's leaf-to-root BMT update path done, given the scheme's
//! ordering rules, the MAC unit's occupancy and the BMT cache's hit
//! behaviour?* Functional tree contents are maintained separately by
//! the system model; engines deal purely in time.
//!
//! | Engine | Scheme | Ordering rule |
//! |---|---|---|
//! | [`SequentialEngine`] | `sp`, `secure_WB` evictions | one persist at a time, one level at a time |
//! | [`PipelinedEngine`] | `pipeline` | PTT: persists stagger one tree level apart, in order |
//! | [`UnorderedEngine`] | `unordered` | none (violates Invariant 2) |
//! | [`OooEngine`] | `o3` | ETT: free within an epoch, levels pipelined across epochs |
//! | [`CoalescingEngine`] | `coalescing` | `o3` plus LCA handoff chains |
//! | [`CounterTreeEngine`] | `sp_ctree` | sequential, whole path persists (§V-D extension) |
//! | [`TriadNvmEngine`] | `triad_nvm` | strict over the deepest N levels, relaxed above |
//! | [`PhoenixEngine`] | `phoenix` | whole path persists plus a dual-copy root commit |

mod coalesce;
mod ctree;
mod mutant;
mod ooo;
mod phoenix;
mod pipeline;
mod sequential;
mod triad;
mod unordered;

pub use coalesce::CoalescingEngine;
pub use ctree::CounterTreeEngine;
pub use mutant::{Mutation, MutantEngine};
pub use ooo::OooEngine;
pub use phoenix::PhoenixEngine;
pub use pipeline::PipelinedEngine;
pub use sequential::SequentialEngine;
pub use triad::TriadNvmEngine;
pub use unordered::UnorderedEngine;

use plp_bmt::{BmtGeometry, NodeLabel};
use plp_events::Cycle;
use plp_nvm::NvmDevice;
use serde::{Deserialize, Serialize};

use crate::meta::{bmt_node_block_addr, MetadataCaches};
use crate::sanitizer::NodeUpdateEvent;
use crate::{SystemConfig, UpdateScheme};

/// Counters reported by the engines.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// BMT node updates performed (each is one MAC computation).
    pub node_updates: u64,
    /// BMT node blocks fetched from NVM on BMT-cache misses.
    pub bmt_fetches: u64,
    /// Persists scheduled.
    pub persists: u64,
}

/// A u32 level count/number as a container index — the engines size
/// and index their per-level tables with tree levels.
pub(crate) fn level_slot(v: u32) -> usize {
    v as usize
}

/// Mutable context an engine needs while scheduling: the BMT cache,
/// the NVM device (for miss fetches), statistics and (when the
/// invariant sanitizer is on) the node-update event tap.
pub struct EngineCtx<'a> {
    /// Tree shape.
    pub geometry: BmtGeometry,
    /// Effective MAC latency (zero under ideal metadata).
    pub mac_latency: Cycle,
    /// The metadata caches (BMT cache lookups).
    pub meta: &'a mut MetadataCaches,
    /// The NVM device for miss fetches.
    pub nvm: &'a mut NvmDevice,
    /// Engine statistics.
    pub stats: &'a mut EngineStats,
    /// Sanitizer event tap: when present, every node update the engine
    /// schedules is recorded for shadow verification (see
    /// [`crate::sanitizer`]). `None` when the sanitizer is off — the
    /// tap then costs one branch per update.
    pub tap: Option<&'a mut Vec<NodeUpdateEvent>>,
    /// Reusable label scratch, owned by the simulation so engines that
    /// need a materialized update path (the mutant's reverse walk)
    /// borrow it instead of allocating one per persist.
    pub walk: &'a mut Vec<NodeLabel>,
    /// The named-failpoint registry, when the crash harness armed one:
    /// `note_update` visits the `between-levels` failpoint through it.
    /// `None` on ordinary runs — one branch per node update, like the
    /// tap.
    pub failpoints: Option<&'a mut crate::failpoint::FailpointRegistry>,
}

impl EngineCtx<'_> {
    /// Records one scheduled BMT node update completing at `done`:
    /// bumps the statistics counter and, when the sanitizer is
    /// listening, pushes the event onto the tap. Every engine reports
    /// each node update through this single point, passing the level
    /// it already tracks for its own scheduling — recomputing it here
    /// per update would put label arithmetic back on the hot path.
    pub fn note_update(&mut self, label: NodeLabel, level: u32, done: Cycle) {
        debug_assert_eq!(level, self.geometry.level(label));
        self.stats.node_updates += 1;
        if let Some(tap) = self.tap.as_deref_mut() {
            tap.push(NodeUpdateEvent { label, level, done });
        }
        if let Some(fp) = self.failpoints.as_deref_mut() {
            fp.hit(crate::failpoint::Failpoint::BetweenLevels);
        }
    }

    /// When node `label` is available on chip for an update requested
    /// at `at`: immediately for the root (an on-chip register) and BMT
    /// cache hits; after an NVM fetch plus integrity verification on a
    /// miss. Sibling values share the fetched 64-byte node block
    /// (eight 8-byte nodes per block), so one fetch covers the MAC
    /// inputs of the level.
    pub fn node_ready(&mut self, label: NodeLabel, at: Cycle) -> Cycle {
        if label.is_root() {
            return at;
        }
        if self.meta.access_bmt(label, true) {
            at
        } else {
            self.stats.bmt_fetches += 1;
            let fetched = self.nvm.read(at, bmt_node_block_addr(label));
            fetched + self.mac_latency // verify the fetched node
        }
    }
}

/// A persist request handed to an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateRequest {
    /// The BMT leaf whose counter block changed.
    pub leaf: NodeLabel,
    /// Earliest cycle the update may begin (tuple gathered in WPQ).
    pub now: Cycle,
}

/// The scheme-specific half of the persist path: the system model owns
/// tuple gathering, crypto and WPQ slotting, and every engine plugs
/// into it through this interface. Engines are `Send` so a
/// [`crate::Simulation`] can run on a worker thread.
pub trait UpdateEngine: std::fmt::Debug + Send {
    /// Schedules a persist's BMT update path; returns the cycle this
    /// persist's scheduled work completes (for 2SP engines, the root
    /// update; for coalescing, the persist's own committed nodes — the
    /// delegated suffix completes at [`UpdateEngine::seal_epoch`]).
    fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle;

    /// Seals the current epoch at an `sfence`: finalizes any pending
    /// coalescing chain, records per-level completion constraints for
    /// the next epoch and returns the sealed epoch's completion time.
    /// Non-epoch engines return `None`.
    fn seal_epoch(&mut self, ctx: &mut EngineCtx<'_>) -> Option<Cycle> {
        let _ = ctx;
        None
    }

    /// The time the engine's last scheduled work completes.
    fn drained_at(&self) -> Cycle;

    /// Node updates eliminated by coalescing (zero for every
    /// non-coalescing engine).
    fn saved_updates(&self) -> u64 {
        0
    }
}

impl UpdateEngine for SequentialEngine {
    fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        SequentialEngine::persist(self, req, ctx)
    }

    fn drained_at(&self) -> Cycle {
        SequentialEngine::drained_at(self)
    }
}

impl UpdateEngine for PipelinedEngine {
    fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        PipelinedEngine::persist(self, req, ctx)
    }

    fn drained_at(&self) -> Cycle {
        PipelinedEngine::drained_at(self)
    }
}

impl UpdateEngine for UnorderedEngine {
    fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        UnorderedEngine::persist(self, req, ctx)
    }

    fn drained_at(&self) -> Cycle {
        UnorderedEngine::drained_at(self)
    }
}

impl UpdateEngine for OooEngine {
    fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        OooEngine::persist(self, req, ctx)
    }

    fn seal_epoch(&mut self, _ctx: &mut EngineCtx<'_>) -> Option<Cycle> {
        Some(OooEngine::seal_epoch(self))
    }

    fn drained_at(&self) -> Cycle {
        OooEngine::drained_at(self)
    }
}

impl UpdateEngine for CoalescingEngine {
    fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        CoalescingEngine::persist(self, req, ctx)
    }

    fn seal_epoch(&mut self, ctx: &mut EngineCtx<'_>) -> Option<Cycle> {
        Some(CoalescingEngine::seal_epoch(self, ctx))
    }

    fn drained_at(&self) -> Cycle {
        CoalescingEngine::drained_at(self)
    }

    fn saved_updates(&self) -> u64 {
        CoalescingEngine::saved_updates(self)
    }
}

impl UpdateEngine for CounterTreeEngine {
    fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        CounterTreeEngine::persist(self, req, ctx)
    }

    fn drained_at(&self) -> Cycle {
        CounterTreeEngine::drained_at(self)
    }
}

impl UpdateEngine for TriadNvmEngine {
    fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        TriadNvmEngine::persist(self, req, ctx)
    }

    fn drained_at(&self) -> Cycle {
        TriadNvmEngine::drained_at(self)
    }
}

impl UpdateEngine for PhoenixEngine {
    fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        PhoenixEngine::persist(self, req, ctx)
    }

    fn drained_at(&self) -> Cycle {
        PhoenixEngine::drained_at(self)
    }
}

/// Builds the engine for `config`'s scheme. The `secure_WB` baseline
/// routes its eviction write-backs through a sequential engine (§VII:
/// evicted dirty blocks update the BMT sequentially).
pub fn for_config(config: &SystemConfig) -> Box<dyn UpdateEngine> {
    let mac = if config.ideal_metadata {
        Cycle::ZERO
    } else {
        config.mac_latency
    };
    let levels = config.bmt.levels();
    match config.scheme {
        UpdateScheme::SecureWb | UpdateScheme::Sp => Box::new(SequentialEngine::new(mac)),
        UpdateScheme::Pipeline => {
            Box::new(PipelinedEngine::new(mac, levels, config.ptt_entries))
        }
        UpdateScheme::Unordered => Box::new(UnorderedEngine::new(mac)),
        UpdateScheme::O3 => Box::new(OooEngine::new(mac, levels, config.ett_entries)),
        UpdateScheme::Coalescing => {
            Box::new(CoalescingEngine::new(mac, levels, config.ett_entries))
        }
        UpdateScheme::SpCounterTree => Box::new(CounterTreeEngine::new(mac)),
        UpdateScheme::TriadNvm => Box::new(TriadNvmEngine::new(mac, config.triad_floor())),
        UpdateScheme::Phoenix => Box::new(PhoenixEngine::new(mac)),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use plp_nvm::NvmConfig;

    /// A self-contained harness owning everything an `EngineCtx`
    /// borrows.
    pub struct CtxHarness {
        pub geometry: BmtGeometry,
        pub mac: Cycle,
        pub meta: MetadataCaches,
        pub nvm: NvmDevice,
        pub stats: EngineStats,
        pub tap: Vec<NodeUpdateEvent>,
        pub walk: Vec<NodeLabel>,
    }

    impl CtxHarness {
        /// 8-ary 4-level tree, 40-cycle MAC, ideal metadata by default
        /// so engine scheduling is exact.
        pub fn ideal() -> Self {
            CtxHarness {
                geometry: BmtGeometry::new(8, 4),
                mac: Cycle::new(40),
                meta: MetadataCaches::new(32 << 10, true),
                nvm: NvmDevice::new(NvmConfig::paper_default()),
                stats: EngineStats::default(),
                tap: Vec::new(),
                walk: Vec::new(),
            }
        }

        /// Same shape but with real (cold) metadata caches.
        pub fn cold() -> Self {
            let mut h = Self::ideal();
            h.meta = MetadataCaches::new(32 << 10, false);
            h
        }

        pub fn ctx(&mut self) -> EngineCtx<'_> {
            EngineCtx {
                geometry: self.geometry,
                mac_latency: self.mac,
                meta: &mut self.meta,
                nvm: &mut self.nvm,
                stats: &mut self.stats,
                tap: None,
                walk: &mut self.walk,
                failpoints: None,
            }
        }

        /// Like [`CtxHarness::ctx`] but with the sanitizer tap
        /// attached, recording every node update into `self.tap`.
        pub fn tapped_ctx(&mut self) -> EngineCtx<'_> {
            EngineCtx {
                geometry: self.geometry,
                mac_latency: self.mac,
                meta: &mut self.meta,
                nvm: &mut self.nvm,
                stats: &mut self.stats,
                tap: Some(&mut self.tap),
                walk: &mut self.walk,
                failpoints: None,
            }
        }

        pub fn req(&self, page: u64, now: u64) -> UpdateRequest {
            UpdateRequest {
                leaf: self.geometry.leaf(page),
                now: Cycle::new(now),
            }
        }
    }

    #[test]
    fn note_update_feeds_stats_and_tap() {
        let mut h = CtxHarness::ideal();
        let mut e = SequentialEngine::new(h.mac);
        let req = h.req(0, 0);
        let _ = e.persist(req, &mut h.tapped_ctx());
        assert_eq!(h.stats.node_updates, 4);
        assert_eq!(h.tap.len(), 4);
        // Events arrive leaf-first with monotone completions.
        assert_eq!(h.tap[0].level, 4);
        assert_eq!(h.tap[3].level, 1);
        assert!(h.tap.windows(2).all(|w| w[0].done <= w[1].done));
        // Without the tap, only the counter moves.
        let req = h.req(1, 0);
        let _ = e.persist(req, &mut h.ctx());
        assert_eq!(h.stats.node_updates, 8);
        assert_eq!(h.tap.len(), 4);
    }
}
