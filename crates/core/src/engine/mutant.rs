//! Deliberately broken update engines that seed known ordering bugs.
//!
//! The invariant sanitizer (see [`crate::sanitizer`]) is only
//! trustworthy if it demonstrably *fires*: each [`Mutation`] here plants
//! one ordering bug from a real failure class — the kind of silent
//! persist-order violation Triad-NVM-style schemes shipped with — and
//! the mutation tests in `crates/core/tests/sanitizer_mutations.rs`
//! assert the sanitizer reports the matching
//! [`crate::sanitizer::ViolationKind`]. A mutant is swapped into a run
//! via [`crate::Simulation::override_engine`]; the production
//! [`super::for_config`] path can never build one.

use plp_events::Cycle;

use super::{level_slot, EngineCtx, UpdateEngine, UpdateRequest};

/// Which ordering bug the mutant plants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Strict-family bug: the leaf-to-root walk silently omits tree
    /// level `.0` (1 = root), breaking Invariant 2's full-path
    /// coverage. Expected verdict: `SkippedLevel`.
    SkipLevel(u32),
    /// Strict-family bug: the walk runs root-first, so shallow levels
    /// complete before deep ones. Expected verdict: `LevelOrder`.
    ReverseWalk,
    /// Epoch-family bug: updates ignore the ETT's per-level
    /// authorization, so a young epoch's update can complete before a
    /// sealed epoch's last update of the same level (and rewrite the
    /// same node out of order across epochs). Expected verdicts:
    /// `EpochLevelOrder` and `WawHazard`.
    IgnoreEpochGate,
    /// Epoch-family bug: every seal after the first reports a
    /// completion one cycle *before* its predecessor's, breaking
    /// monotone epoch retirement (and under-reporting the epoch's own
    /// updates). Expected verdict: `EpochCompletionOrder`.
    RegressSeal,
}

/// An engine wrapping one seeded [`Mutation`]. Strict mutations model
/// an unpipelined sequential walker with the bug applied; epoch
/// mutations model an `o3`-style engine with the bug applied.
#[derive(Debug)]
pub struct MutantEngine {
    mutation: Mutation,
    mac_latency: Cycle,
    /// Per-level completion of sealed epochs (the gate
    /// [`Mutation::IgnoreEpochGate`] ignores).
    prev_epoch_level_done: Vec<Cycle>,
    /// Per-level max completion of the open epoch.
    cur_epoch_level_max: Vec<Cycle>,
    last_reported_seal: Option<Cycle>,
    drained: Cycle,
}

impl MutantEngine {
    /// Creates a mutant for a `levels`-deep tree.
    pub fn new(mutation: Mutation, mac_latency: Cycle, levels: u32) -> Self {
        MutantEngine {
            mutation,
            mac_latency,
            prev_epoch_level_done: vec![Cycle::ZERO; level_slot(levels)],
            cur_epoch_level_max: vec![Cycle::ZERO; level_slot(levels)],
            last_reported_seal: None,
            drained: Cycle::ZERO,
        }
    }

    fn update_node(
        &mut self,
        label: plp_bmt::NodeLabel,
        level: u32,
        at: Cycle,
        ctx: &mut EngineCtx<'_>,
    ) -> Cycle {
        let slot = level_slot(level - 1);
        let gate = match self.mutation {
            // The planted bug: skip the cross-epoch authorization.
            Mutation::IgnoreEpochGate => at,
            _ => at.max(self.prev_epoch_level_done[slot]),
        };
        let done = ctx.node_ready(label, gate) + self.mac_latency;
        ctx.note_update(label, level, done);
        self.cur_epoch_level_max[slot] = self.cur_epoch_level_max[slot].max(done);
        done
    }
}

impl UpdateEngine for MutantEngine {
    fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        let mut t = req.now;
        match self.mutation {
            Mutation::SkipLevel(skip) => {
                for (label, level) in ctx.geometry.walk_up(req.leaf) {
                    if level == skip {
                        continue; // the planted bug
                    }
                    t = self.update_node(label, level, t, ctx);
                }
            }
            Mutation::ReverseWalk => {
                // The planted bug: root first. The only walk that needs
                // a materialized path — borrowed from the simulation's
                // shared scratch, not allocated.
                let mut path = std::mem::take(ctx.walk);
                ctx.geometry.update_path_into(req.leaf, &mut path);
                let levels = ctx.geometry.levels();
                for level in 1..=levels {
                    let label = path[level_slot(levels - level)];
                    t = self.update_node(label, level, t, ctx);
                }
                *ctx.walk = path;
            }
            Mutation::IgnoreEpochGate | Mutation::RegressSeal => {
                for (label, level) in ctx.geometry.walk_up(req.leaf) {
                    t = self.update_node(label, level, t, ctx);
                }
            }
        }
        self.drained = self.drained.max(t);
        t
    }

    fn seal_epoch(&mut self, _ctx: &mut EngineCtx<'_>) -> Option<Cycle> {
        let cur_max = self
            .cur_epoch_level_max
            .iter()
            .copied()
            .fold(Cycle::ZERO, Cycle::max);
        for (prev, cur) in self
            .prev_epoch_level_done
            .iter_mut()
            .zip(&mut self.cur_epoch_level_max)
        {
            *prev = (*prev).max(*cur);
            *cur = Cycle::ZERO;
        }
        let completion = match (self.mutation, self.last_reported_seal) {
            // The planted bug: claim this epoch retired just before its
            // predecessor.
            (Mutation::RegressSeal, Some(last)) => last.saturating_sub(Cycle::new(1)),
            _ => self.last_reported_seal.unwrap_or(Cycle::ZERO).max(cur_max),
        };
        self.last_reported_seal = Some(completion);
        self.drained = self.drained.max(cur_max);
        Some(completion)
    }

    fn drained_at(&self) -> Cycle {
        self.drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::CtxHarness;

    #[test]
    fn skip_level_walks_one_short() {
        let mut h = CtxHarness::ideal();
        let mut e = MutantEngine::new(Mutation::SkipLevel(2), h.mac, 4);
        let req = h.req(0, 0);
        let _ = UpdateEngine::persist(&mut e, req, &mut h.tapped_ctx());
        assert_eq!(h.stats.node_updates, 3);
        assert!(h.tap.iter().all(|ev| ev.level != 2));
    }

    #[test]
    fn reverse_walk_completes_root_before_leaf() {
        let mut h = CtxHarness::ideal();
        let mut e = MutantEngine::new(Mutation::ReverseWalk, h.mac, 4);
        let req = h.req(0, 0);
        let _ = UpdateEngine::persist(&mut e, req, &mut h.tapped_ctx());
        let root = h.tap.iter().find(|ev| ev.level == 1).copied();
        let leaf = h.tap.iter().find(|ev| ev.level == 4).copied();
        let (root, leaf) = (root.expect("root updated"), leaf.expect("leaf updated"));
        assert!(root.done < leaf.done, "mutant must finish the root first");
    }

    #[test]
    fn regress_seal_reports_backwards_completions() {
        let mut h = CtxHarness::ideal();
        let mut e = MutantEngine::new(Mutation::RegressSeal, h.mac, 4);
        let req = h.req(0, 0);
        let _ = UpdateEngine::persist(&mut e, req, &mut h.ctx());
        let c1 = e.seal_epoch(&mut h.ctx()).expect("epoch engine seals");
        let req = h.req(1, 1_000);
        let _ = UpdateEngine::persist(&mut e, req, &mut h.ctx());
        let c2 = e.seal_epoch(&mut h.ctx()).expect("epoch engine seals");
        assert!(c2 < c1, "seal completions must regress: {c1} -> {c2}");
    }

    #[test]
    fn ignore_epoch_gate_lets_updates_jump_the_handoff() {
        let mut h = CtxHarness::cold();
        let mut e = MutantEngine::new(Mutation::IgnoreEpochGate, h.mac, 4);
        // Epoch 0: a cold walk with late completions.
        let req = h.req(0, 0);
        let _ = UpdateEngine::persist(&mut e, req, &mut h.ctx());
        let _ = e.seal_epoch(&mut h.ctx());
        // Epoch 1 revisits the same (now warm) path at time zero: with
        // the gate ignored, its updates complete before epoch 0's.
        h.tap.clear();
        let req = h.req(0, 0);
        let _ = UpdateEngine::persist(&mut e, req, &mut h.tapped_ctx());
        assert!(
            h.tap
                .iter()
                .any(|ev| ev.done < e.prev_epoch_level_done[(ev.level - 1) as usize]),
            "gate-free updates should land before the sealed frontier"
        );
    }
}
