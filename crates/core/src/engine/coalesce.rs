//! PLP mechanism 3: BMT update coalescing (epoch persistency).

use plp_bmt::NodeLabel;
use plp_events::Cycle;

use super::{EngineCtx, OooEngine, UpdateRequest};

/// The chained-handoff persist awaiting its shared-suffix walk.
#[derive(Debug, Clone, Copy)]
struct Carrier {
    /// The leaf whose update path the carrier owns.
    leaf: NodeLabel,
    /// Deepest level of the carrier's path not yet committed
    /// (levels `suffix_from ..= 1` remain); 0 means nothing remains.
    suffix_from: u32,
    /// Completion time of the carrier's last committed node.
    ready: Cycle,
}

/// The coalescing engine of §IV-B2/§V-C: out-of-order epoch updates
/// plus paired LCA coalescing. When a new persist arrives, the
/// previous (pending) persist commits its path only up to their least
/// common ancestor and delegates the shared suffix to the newcomer —
/// the LCA update waits for the newcomer's sub-LCA work, so the single
/// walk covers both persists (Fig. 5's example: 12 node updates become
/// 7). The reduction in superfluous updates is the mechanism's benefit;
/// its runtime is close to `o3` because the older update waits for the
/// younger to reach the LCA (§VII).
#[derive(Debug, Clone)]
pub struct CoalescingEngine {
    inner: OooEngine,
    levels: u32,
    carrier: Option<Carrier>,
    /// Node updates saved by coalescing (vs. every persist walking the
    /// full path).
    saved_updates: u64,
}

impl CoalescingEngine {
    /// Creates an idle engine.
    ///
    /// # Panics
    ///
    /// Panics if `ett_entries` is zero.
    pub fn new(mac_latency: Cycle, levels: u32, ett_entries: usize) -> Self {
        CoalescingEngine {
            inner: OooEngine::new(mac_latency, levels, ett_entries),
            levels,
            carrier: None,
            saved_updates: 0,
        }
    }

    /// Node updates eliminated by coalescing so far.
    pub fn saved_updates(&self) -> u64 {
        self.saved_updates
    }

    /// Commits the carrier's path at levels `from ..= to` (deep to
    /// shallow), with `extra_gate` additionally constraining the
    /// shallowest (`to`-level, i.e. LCA) update. Returns the completion
    /// of the last committed node.
    fn commit_carrier_levels(
        &mut self,
        carrier: Carrier,
        to_level: u32,
        extra_gate: Cycle,
        ctx: &mut EngineCtx<'_>,
    ) -> Cycle {
        let mut t = carrier.ready;
        if carrier.suffix_from < to_level || carrier.suffix_from == 0 {
            return t;
        }
        // One O(1) ancestor lift to the suffix's deepest node, then a
        // parent step per committed level — no materialized path.
        let mut node = ctx
            .geometry
            .ancestor_at_level(carrier.leaf, carrier.suffix_from);
        for level in (to_level..=carrier.suffix_from).rev() {
            let gate = if level == to_level { t.max(extra_gate) } else { t };
            t = self.inner.update_node(node, level, gate, ctx);
            if level > to_level {
                node = match ctx.geometry.parent(node) {
                    Some(p) => p,
                    None => break,
                };
            }
        }
        t
    }

    /// Schedules a persist. If a carrier is pending, the carrier
    /// commits through the pair's LCA (gated on this persist's sub-LCA
    /// work) and this persist inherits the shared suffix; otherwise
    /// this persist becomes the carrier. Returns the completion of the
    /// work scheduled *now* for this persist (delegated suffixes finish
    /// at [`CoalescingEngine::seal_epoch`]).
    pub fn persist(&mut self, req: UpdateRequest, ctx: &mut EngineCtx<'_>) -> Cycle {
        let now = req.now.max(self.inner.floor());
        let Some(carrier) = self.carrier.take() else {
            self.carrier = Some(Carrier {
                leaf: req.leaf,
                suffix_from: self.levels,
                ready: now,
            });
            return now;
        };

        let lca_level = ctx.geometry.level(ctx.geometry.lca(carrier.leaf, req.leaf));
        if lca_level > carrier.suffix_from {
            // The junction is below the carrier's remaining suffix (it
            // already committed past it, e.g. a same-page revisit):
            // no handoff is possible. Finalize the carrier's suffix and
            // start a fresh chain with this persist.
            let done = self.commit_carrier_levels(carrier, 1, Cycle::ZERO, ctx);
            self.carrier = Some(Carrier {
                leaf: req.leaf,
                suffix_from: self.levels,
                ready: now,
            });
            return done.max(now);
        }

        // This persist walks its own nodes strictly below the LCA.
        let mut own_done = now;
        for (node, level) in ctx.geometry.walk_up(req.leaf) {
            if level <= lca_level {
                break;
            }
            own_done = self.inner.update_node(node, level, own_done, ctx);
        }
        // The carrier commits down to the LCA, whose update must also
        // wait for this persist's sub-LCA work.
        let carrier_done = self.commit_carrier_levels(carrier, lca_level, own_done, ctx);
        // Updates saved: this persist will never walk levels
        // `lca_level ..= 1` of its own path; the carrier covered the
        // LCA, and the suffix above it is inherited (and may be saved
        // again at the next handoff).
        self.saved_updates += 1;
        self.carrier = Some(Carrier {
            leaf: req.leaf,
            suffix_from: lca_level.saturating_sub(1),
            ready: own_done.max(carrier_done),
        });
        own_done.max(carrier_done)
    }

    /// Seals the epoch: the pending carrier walks its remaining suffix
    /// to the root, then the inner ETT rotates. Returns the epoch's
    /// completion time.
    pub fn seal_epoch(&mut self, ctx: &mut EngineCtx<'_>) -> Cycle {
        if let Some(carrier) = self.carrier.take() {
            self.commit_carrier_levels(carrier, 1, Cycle::ZERO, ctx);
        }
        self.inner.seal_epoch()
    }

    /// When the engine's last scheduled work completes.
    pub fn drained_at(&self) -> Cycle {
        self.inner.drained_at()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::testutil::CtxHarness;

    /// Fig. 5's scenario on an (8, 4) tree: three persists in one epoch
    /// with LCAs at level 3 (δ1, δ2) and level 2 (chain, δ3).
    #[test]
    fn fig5_update_counts() {
        let mut h = CtxHarness::ideal();
        let mut e = CoalescingEngine::new(h.mac, 4, 2);
        // δ1: page 0 (leaf X41); δ2: page 1 (leaf X42, same level-3
        // parent); δ3: page 24 (different level-3 parent, same level-2
        // ancestor X21).
        let _ = e.persist(h.req(0, 0), &mut h.ctx());
        let _ = e.persist(h.req(1, 0), &mut h.ctx());
        let _ = e.persist(h.req(24, 0), &mut h.ctx());
        let _ = e.seal_epoch(&mut h.ctx());
        // Without coalescing: 3 x 4 = 12 updates. Fig. 5 reports 7.
        assert_eq!(h.stats.node_updates, 7);
        assert_eq!(e.saved_updates(), 2);
    }

    #[test]
    fn lone_persist_walks_full_path_at_seal() {
        let mut h = CtxHarness::ideal();
        let mut e = CoalescingEngine::new(h.mac, 4, 2);
        let _ = e.persist(h.req(5, 0), &mut h.ctx());
        assert_eq!(h.stats.node_updates, 0, "work deferred until handoff");
        let c = e.seal_epoch(&mut h.ctx());
        assert_eq!(h.stats.node_updates, 4);
        assert_eq!(c, Cycle::new(160));
    }

    #[test]
    fn same_page_persists_share_one_walk() {
        // §IV-B2: blocks of the same encryption page updated within an
        // epoch produce a single counter block and, with coalescing, a
        // single leaf-to-root walk instead of two.
        let mut h = CtxHarness::ideal();
        let mut e = CoalescingEngine::new(h.mac, 4, 2);
        let _ = e.persist(h.req(7, 0), &mut h.ctx());
        let _ = e.persist(h.req(7, 0), &mut h.ctx());
        let _ = e.seal_epoch(&mut h.ctx());
        assert_eq!(h.stats.node_updates, 4);
        assert_eq!(e.saved_updates(), 1);
    }

    #[test]
    fn junction_below_committed_frontier_restarts_chain() {
        // carrier = leaf1 with suffix at level 2 after a handoff; a new
        // persist whose LCA with leaf1 is at level 3 (deeper than the
        // frontier) cannot delegate — the chain finalizes and restarts.
        let mut h = CtxHarness::ideal();
        let mut e = CoalescingEngine::new(h.mac, 4, 2);
        let _ = e.persist(h.req(0, 0), &mut h.ctx()); // carrier leaf0
        let _ = e.persist(h.req(1, 0), &mut h.ctx()); // handoff at L3
        let _ = e.persist(h.req(0, 0), &mut h.ctx()); // junction at L3 again
        let _ = e.seal_epoch(&mut h.ctx());
        // delta1: leaf0+X3 by handoff (2) + delta2's own leaf1 (1)
        // + finalize X2+root (2) + fresh chain full walk at seal (4).
        assert_eq!(h.stats.node_updates, 9);
        assert_eq!(e.saved_updates(), 1);
    }

    #[test]
    fn coalescing_never_updates_more_than_ooo() {
        use crate::engine::OooEngine as Plain;
        let pages = [0u64, 1, 2, 64, 65, 100, 101, 300, 300, 5];
        let mut hc = CtxHarness::ideal();
        let mut c = CoalescingEngine::new(hc.mac, 4, 2);
        for &p in &pages {
            let req = hc.req(p, 0);
            let _ = c.persist(req, &mut hc.ctx());
        }
        let _ = c.seal_epoch(&mut hc.ctx());
        let coalesced = hc.stats.node_updates;

        let mut ho = CtxHarness::ideal();
        let mut o = Plain::new(ho.mac, 4, 2);
        for &p in &pages {
            let req = ho.req(p, 0);
            let _ = o.persist(req, &mut ho.ctx());
        }
        let _ = o.seal_epoch();
        let plain = ho.stats.node_updates;

        assert!(coalesced < plain, "coalescing saved nothing");
        assert_eq!(plain, pages.len() as u64 * 4);
    }

    #[test]
    fn cross_epoch_ordering_preserved() {
        let mut h = CtxHarness::ideal();
        let mut e = CoalescingEngine::new(h.mac, 4, 2);
        let _ = e.persist(h.req(0, 0), &mut h.ctx());
        let c1 = e.seal_epoch(&mut h.ctx());
        let _ = e.persist(h.req(511, 0), &mut h.ctx());
        let c2 = e.seal_epoch(&mut h.ctx());
        assert!(c2 > c1, "epoch completions must stay ordered");
    }

    #[test]
    fn lca_update_waits_for_younger_sublca_work() {
        // The carrier's LCA commit is gated on the newcomer's sub-LCA
        // completion — the reason coalescing's runtime stays close to
        // o3 (§VII).
        let mut h = CtxHarness::ideal();
        let mut e = CoalescingEngine::new(h.mac, 4, 2);
        let _ = e.persist(h.req(0, 0), &mut h.ctx());
        // Newcomer arrives late: the chain cannot commit the LCA any
        // earlier than the newcomer's leaf update.
        let done = e.persist(h.req(1, 1_000), &mut h.ctx());
        // Newcomer's leaf done at 1040; carrier then commits leaf(0)
        // at >= its ready and LCA at >= 1040.
        assert!(done >= Cycle::new(1040 + 40));
    }
}
