//! A Fibonacci-multiply hasher for the simulator's hot-path maps.
//!
//! The persist path does several map operations per store (counter
//! blocks, architectural plaintexts, the sanitizer's WAW tracker), and
//! the standard library's default SipHash is the single largest
//! non-crypto cost on that path. The keys involved — page indices,
//! block addresses, node labels — are already well-distributed
//! integers, so a single multiply by the 64-bit golden-ratio constant
//! mixes them adequately. These maps are never iterated for
//! user-visible output, so the hasher swap cannot perturb the
//! simulator's byte-deterministic stdout.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

/// One Fibonacci multiply per written word.
#[derive(Debug, Default)]
pub(crate) struct FibHasher(u64);

impl std::hash::Hasher for FibHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0 ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// A `HashMap` keyed by well-mixed integers, hashed with one multiply.
pub(crate) type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FibHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_a_map() {
        let mut m: FastMap<u64, u64> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 0x1000, i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 0x1000)), Some(&i));
        }
        assert_eq!(m.remove(&0), Some(0));
        assert!(!m.contains_key(&0));
    }

    #[test]
    fn byte_and_word_paths_agree_on_distribution() {
        // Not a correctness requirement, just a sanity floor: nearby
        // keys must not all collide into one bucket's hash.
        use std::hash::{Hash, Hasher};
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            let mut h = FibHasher::default();
            i.hash(&mut h);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 64, "sequential keys collided");
    }
}
