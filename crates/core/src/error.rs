//! The shared error type for fallible simulator construction.
//!
//! [`SystemConfig::validate`](crate::SystemConfig::validate),
//! [`SimSetup::new`](crate::SimSetup::new) and
//! [`SimSetup::with_base_ipc`](crate::SimSetup::with_base_ipc)
//! all report through [`ConfigError`], which also wraps the NVM
//! device's own [`NvmError`] so callers handle one type end to end.

use plp_nvm::NvmError;
use serde::{Deserialize, Serialize};

/// Why a system configuration (or simulator construction) was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ConfigError {
    /// Epochs must contain at least one store.
    EpochSizeZero,
    /// A tracking structure must have at least one entry.
    EmptyTable {
        /// Which structure ("WPQ", "PTT" or "ETT").
        table: &'static str,
    },
    /// The core model needs a positive, finite baseline IPC.
    NonPositiveBaseIpc {
        /// The rejected IPC.
        base_ipc: f64,
    },
    /// `triad_nvm` must strictly persist at least one level and leave
    /// at least one level relaxed.
    TriadLevels {
        /// The rejected persisted-level count.
        persisted: u32,
        /// The tree's total level count.
        levels: u32,
    },
    /// The NVM device configuration is invalid.
    Nvm(NvmError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::EpochSizeZero => write!(f, "epoch size must be at least 1 store"),
            ConfigError::EmptyTable { table } => {
                write!(f, "{table} must have at least one entry")
            }
            ConfigError::NonPositiveBaseIpc { base_ipc } => {
                write!(f, "base IPC must be positive and finite, got {base_ipc}")
            }
            ConfigError::TriadLevels { persisted, levels } => {
                write!(
                    f,
                    "triad_nvm must persist between 1 and {} levels (tree has {levels}), got {persisted}",
                    levels.saturating_sub(1)
                )
            }
            ConfigError::Nvm(e) => write!(f, "NVM: {e}"),
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Nvm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NvmError> for ConfigError {
    fn from(e: NvmError) -> Self {
        ConfigError::Nvm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        assert!(ConfigError::EpochSizeZero.to_string().contains("epoch"));
        assert!(ConfigError::EmptyTable { table: "WPQ" }
            .to_string()
            .contains("WPQ"));
        let wrapped = ConfigError::from(NvmError::ZeroBanks);
        assert!(wrapped.to_string().contains("bank"));
        assert!(std::error::Error::source(&wrapped).is_some());
        assert!(std::error::Error::source(&ConfigError::EpochSizeZero).is_none());
    }
}
