//! The durable half of the crash harness: mirroring the persist
//! stream into a file-backed device image, and rebuilding a
//! [`PersistImage`] from whatever a SIGKILLed process left behind.
//!
//! The simulator's own crash machinery (`PersistImage::at_time`)
//! *reconstructs* durable state from in-memory records — fine for
//! in-process injection, but it dies with the process. The
//! [`DurableSink`] closes that gap: every persisted tuple is appended
//! write-through to a `plp_nvm` image file at the moment it becomes
//! durable, so the image on disk is always exactly the persisted
//! prefix, whatever instant the process is killed at.
//!
//! Frame granularity *is* the persistency claim under test:
//!
//! * tuple-atomic schemes (everything except `unordered`) append one
//!   frame per tuple — and when the armed `mid-tuple` failpoint is
//!   about to fire, the frame is deliberately appended *torn*, so the
//!   image reader discards it, which is precisely the 2SP guarantee
//!   that an interrupted tuple leaves no partial state;
//! * the `unordered` baseline appends each component (data, counter,
//!   MAC, root) as its own frame with the `mid-tuple` failpoint
//!   between them, so a kill really does strand a half-written tuple
//!   on disk — Tables I/II made physical.
//!
//! [`replay_image`] is the recovery entry for on-disk images: it
//! folds intact frames back into a [`PersistImage`] (plus bookkeeping
//! about which persists are fully on disk) ready for
//! `RecoveryManager::recover`.

use std::collections::BTreeSet;
use std::path::Path;

use plp_bmt::{BmtGeometry, NodeValue};
use plp_crypto::{CounterBlock, DataBlock, MacTag, SipKey};
use plp_events::addr::{BlockAddr, BLOCKS_PER_PAGE};
use plp_nvm::image::{read_image, ImageHeader, ImageWriter};
use plp_nvm::NvmError;

use crate::failpoint::{Failpoint, FailpointRegistry};
use crate::recovery::PersistImage;
use crate::SystemConfig;

/// Frame tag: one whole tuple `(C, γ, M, R)` persisted atomically.
pub const TAG_TUPLE: u8 = 1;
/// Frame tag: the ciphertext component alone (`unordered`).
pub const TAG_DATA: u8 = 2;
/// Frame tag: the counter-block component alone (`unordered`).
pub const TAG_COUNTER: u8 = 3;
/// Frame tag: the MAC component alone (`unordered`).
pub const TAG_MAC: u8 = 4;
/// Frame tag: the root component alone (`unordered`).
pub const TAG_ROOT: u8 = 5;
/// Frame tag: an epoch seal (epoch id + sealed root).
pub const TAG_SEAL: u8 = 6;
/// Frame tag: one page-overflow re-encryption, atomic with its
/// carrier tuple.
pub const TAG_OVERFLOW: u8 = 7;
/// Frame tag (recovered image): one repaired block — address, MAC and
/// ciphertext, written by recovery's canonical writeback.
pub const TAG_REC_BLOCK: u8 = 8;
/// Frame tag (recovered image): one counter block by page index.
pub const TAG_REC_COUNTER: u8 = 9;
/// Frame tag (recovered image): the sorted list of persist ids that
/// were fully durable at the crash — carried forward verbatim so
/// recovery is monotone (never *less* recovered after a second kill).
pub const TAG_REC_IDS: u8 = 10;
/// Frame tag (recovered image): the sorted addresses recovery fenced
/// off as damaged. Their data and MACs are deliberately absent, so a
/// re-recovery re-quarantines them rather than resurrecting garbage.
pub const TAG_REC_QUARANTINE: u8 = 11;
/// Frame tag (recovered image): the commit record — adopted root and
/// seal count. Its presence marks an image as canonical-recovered;
/// it is always the final frame recovery writes before the rename.
pub const TAG_ROOT_COMMIT: u8 = 12;
/// Frame tag: `triad_nvm`'s strict slice — the data and counter
/// components persisted atomically, with the MAC and root trailing in
/// their own frames after the relaxed-level flush window. A kill in
/// that window leaves this frame durable and the id *partial*: fresh
/// data under a stale MAC, the scheme's detected-loss signature.
pub const TAG_TRIAD: u8 = 13;

const COUNTERS_BYTES: usize = 8 + BLOCKS_PER_PAGE;

/// Why an image replay failed (beyond the file-level [`NvmError`]s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplayError {
    /// The file itself could not be read or validated.
    Image(NvmError),
    /// The header passed its checksum but describes an impossible
    /// tree geometry.
    BadGeometry,
    /// An intact frame carries a payload of the wrong size for its
    /// tag — a producer bug, not a torn write.
    BadFrame {
        /// The offending frame's tag.
        tag: u8,
        /// Its payload length.
        len: usize,
    },
    /// An intact counter frame failed counter-block validation.
    BadCounters,
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Image(e) => write!(f, "image unreadable: {e}"),
            ReplayError::BadGeometry => write!(f, "image header describes an invalid geometry"),
            ReplayError::BadFrame { tag, len } => {
                write!(f, "frame tag {tag} has malformed payload ({len} bytes)")
            }
            ReplayError::BadCounters => write!(f, "counter frame failed validation"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<NvmError> for ReplayError {
    fn from(e: NvmError) -> Self {
        ReplayError::Image(e)
    }
}

/// One persisted tuple, borrowed from the simulation for appending.
pub(crate) struct TupleFrame<'a> {
    /// Persist id (the store sequence number).
    pub id: u64,
    /// The persisted block.
    pub addr: BlockAddr,
    /// Its encryption page.
    pub page: u64,
    /// Ciphertext component.
    pub cipher: &'a DataBlock,
    /// Counter-block component (post-bump).
    pub counters: &'a CounterBlock,
    /// MAC component.
    pub mac: MacTag,
    /// BMT root after this persist's leaf update.
    pub root: NodeValue,
}

impl TupleFrame<'_> {
    fn payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(40 + 64 + COUNTERS_BYTES);
        p.extend_from_slice(&self.id.to_le_bytes());
        p.extend_from_slice(&self.addr.index().to_le_bytes());
        p.extend_from_slice(&self.page.to_le_bytes());
        p.extend_from_slice(&self.root.to_le_bytes());
        p.extend_from_slice(&self.mac.raw().to_le_bytes());
        p.extend_from_slice(self.cipher.as_bytes());
        p.extend_from_slice(&self.counters.to_bytes());
        p
    }
}

/// `triad_nvm`'s atomic strict slice, borrowed for appending: the
/// data/counter pair without the trailing MAC and root.
pub(crate) struct TriadFrame<'a> {
    /// Persist id (the store sequence number).
    pub id: u64,
    /// The persisted block.
    pub addr: BlockAddr,
    /// Its encryption page.
    pub page: u64,
    /// Ciphertext component.
    pub cipher: &'a DataBlock,
    /// Counter-block component (post-bump).
    pub counters: &'a CounterBlock,
}

impl TriadFrame<'_> {
    fn payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(24 + 64 + COUNTERS_BYTES);
        p.extend_from_slice(&self.id.to_le_bytes());
        p.extend_from_slice(&self.addr.index().to_le_bytes());
        p.extend_from_slice(&self.page.to_le_bytes());
        p.extend_from_slice(self.cipher.as_bytes());
        p.extend_from_slice(&self.counters.to_bytes());
        p
    }
}

/// Write-through mirror of the persist stream into a device image.
///
/// I/O errors never panic and never disturb the simulation: the first
/// error poisons the sink (subsequent appends become no-ops) and is
/// surfaced through [`DurableSink::error`] after the run.
#[derive(Debug)]
pub struct DurableSink {
    writer: ImageWriter,
    error: Option<NvmError>,
    frames: u64,
}

impl DurableSink {
    /// Creates the image file for a run of `config` with trace `seed`,
    /// writing its identifying header.
    pub fn create(path: &Path, config: &SystemConfig, seed: u64) -> Result<Self, NvmError> {
        let header = ImageHeader {
            arity: config.bmt.arity(),
            levels: config.bmt.levels(),
            seed,
            scheme: config.scheme.name().to_string(),
        };
        Ok(DurableSink {
            writer: ImageWriter::create(path, &header)?,
            error: None,
            frames: 0,
        })
    }

    /// The first I/O error the sink swallowed, if any.
    pub fn error(&self) -> Option<NvmError> {
        self.error
    }

    /// Frames appended so far.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    fn push(&mut self, tag: u8, payload: &[u8]) {
        if self.error.is_some() {
            return;
        }
        match self.writer.append(tag, payload) {
            Ok(()) => self.frames += 1,
            Err(e) => self.error = Some(e),
        }
    }

    /// Appends one whole tuple atomically.
    pub(crate) fn tuple(&mut self, frame: &TupleFrame<'_>) {
        self.push(TAG_TUPLE, &frame.payload());
    }

    /// Appends a deliberately torn prefix of a tuple frame — the write
    /// the armed `mid-tuple` kill lands on. Readers discard it.
    pub(crate) fn tuple_torn(&mut self, frame: &TupleFrame<'_>) {
        if self.error.is_some() {
            return;
        }
        let p = frame.payload();
        // Keep roughly half the frame: enough to be visibly torn,
        // never enough to checksum.
        let keep = (13 + p.len()) / 2;
        if let Err(e) = self.writer.append_torn(TAG_TUPLE, &p, keep) {
            self.error = Some(e);
        }
    }

    /// Appends `triad_nvm`'s strict data/counter slice atomically.
    pub(crate) fn triad(&mut self, frame: &TriadFrame<'_>) {
        self.push(TAG_TRIAD, &frame.payload());
    }

    /// Appends a deliberately torn prefix of a triad frame — the write
    /// the armed `mid-tuple` kill lands on. Readers discard it, so an
    /// interrupted strict slice leaves no partial state (only the
    /// *relaxed* window can strand components).
    pub(crate) fn triad_torn(&mut self, frame: &TriadFrame<'_>) {
        if self.error.is_some() {
            return;
        }
        let p = frame.payload();
        let keep = (13 + p.len()) / 2;
        if let Err(e) = self.writer.append_torn(TAG_TRIAD, &p, keep) {
            self.error = Some(e);
        }
    }

    /// Appends the ciphertext component alone (`unordered`).
    pub(crate) fn data(&mut self, id: u64, addr: BlockAddr, cipher: &DataBlock) {
        let mut p = Vec::with_capacity(16 + 64);
        p.extend_from_slice(&id.to_le_bytes());
        p.extend_from_slice(&addr.index().to_le_bytes());
        p.extend_from_slice(cipher.as_bytes());
        self.push(TAG_DATA, &p);
    }

    /// Appends the counter-block component alone (`unordered`).
    pub(crate) fn counter(&mut self, id: u64, page: u64, counters: &CounterBlock) {
        let mut p = Vec::with_capacity(16 + COUNTERS_BYTES);
        p.extend_from_slice(&id.to_le_bytes());
        p.extend_from_slice(&page.to_le_bytes());
        p.extend_from_slice(&counters.to_bytes());
        self.push(TAG_COUNTER, &p);
    }

    /// Appends the MAC component alone (`unordered`).
    pub(crate) fn mac_tag(&mut self, id: u64, addr: BlockAddr, mac: MacTag) {
        let mut p = Vec::with_capacity(24);
        p.extend_from_slice(&id.to_le_bytes());
        p.extend_from_slice(&addr.index().to_le_bytes());
        p.extend_from_slice(&mac.raw().to_le_bytes());
        self.push(TAG_MAC, &p);
    }

    /// Appends the root component alone (`unordered`).
    pub(crate) fn root(&mut self, id: u64, root: NodeValue) {
        let mut p = Vec::with_capacity(16);
        p.extend_from_slice(&id.to_le_bytes());
        p.extend_from_slice(&root.to_le_bytes());
        self.push(TAG_ROOT, &p);
    }

    /// Appends an epoch seal.
    pub(crate) fn seal(&mut self, epoch: u64, root: NodeValue) {
        let mut p = Vec::with_capacity(16);
        p.extend_from_slice(&epoch.to_le_bytes());
        p.extend_from_slice(&root.to_le_bytes());
        self.push(TAG_SEAL, &p);
    }

    /// Appends one page-overflow re-encryption (atomic with the
    /// carrier tuple that overflowed the page's major counter).
    pub(crate) fn overflow(&mut self, id: u64, addr: BlockAddr, cipher: &DataBlock, mac: MacTag) {
        let mut p = Vec::with_capacity(24 + 64);
        p.extend_from_slice(&id.to_le_bytes());
        p.extend_from_slice(&addr.index().to_le_bytes());
        p.extend_from_slice(&mac.raw().to_le_bytes());
        p.extend_from_slice(cipher.as_bytes());
        self.push(TAG_OVERFLOW, &p);
    }
}

/// Everything recovered from a killed run's image file.
#[derive(Debug)]
pub struct ReplayedImage {
    /// The image's identifying header.
    pub header: ImageHeader,
    /// The durable state the kill left behind, in the same shape the
    /// in-process crash machinery produces.
    pub image: PersistImage,
    /// Persist ids whose tuples are fully on disk (all components for
    /// `unordered`; the atomic frame otherwise; overflow frames count
    /// as their own ids).
    pub complete_ids: BTreeSet<u64>,
    /// Persist ids with *some but not all* components on disk — only
    /// ever non-empty for component-granular schemes.
    pub partial_ids: BTreeSet<u64>,
    /// Epoch seals on disk.
    pub seals: u64,
    /// Intact frames replayed.
    pub frames: usize,
    /// Bytes discarded as a torn tail (non-zero iff the kill landed
    /// mid-append).
    pub torn_tail_bytes: u64,
    /// Whether the image is a canonical recovered image (its commit
    /// frame is on disk) — i.e. a prior [`recover_image`] completed.
    pub recovered: bool,
    /// Addresses a prior recovery quarantined (empty for raw images).
    pub quarantined: BTreeSet<BlockAddr>,
}

fn le_u64(p: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&p[off..off + 8]);
    u64::from_le_bytes(b)
}

fn le_cipher(p: &[u8], off: usize) -> DataBlock {
    let mut b = [0u8; 64];
    b.copy_from_slice(&p[off..off + 64]);
    DataBlock::from_bytes(b)
}

fn le_counters(p: &[u8], off: usize) -> Result<CounterBlock, ReplayError> {
    let mut b = [0u8; COUNTERS_BYTES];
    b.copy_from_slice(&p[off..off + COUNTERS_BYTES]);
    CounterBlock::from_bytes(&b).map_err(|_| ReplayError::BadCounters)
}

/// Rebuilds the durable [`PersistImage`] a killed process left in
/// `path`, under master key `key` (the image stores geometry but the
/// key never leaves the chip).
///
/// Torn tails are tolerated — they are the kill itself. Anything else
/// malformed is a typed error, never a panic.
pub fn replay_image(path: &Path, key: SipKey) -> Result<ReplayedImage, ReplayError> {
    let contents = read_image(path)?;
    let header = contents.header.clone();
    if header.arity < 2 || header.arity > 1 << 16 || header.levels == 0 || header.levels > 16 {
        return Err(ReplayError::BadGeometry);
    }
    let geometry = BmtGeometry::new(header.arity, header.levels);
    // An image with no root frame on disk keeps the fresh-tree root —
    // the same convention as `PersistImage::fresh`.
    let mut image = PersistImage::fresh(geometry, key);

    let mut complete_ids: BTreeSet<u64> = BTreeSet::new();
    // Component bitmask per id: data=1, counter=2, mac=4, root=8.
    let mut components: std::collections::HashMap<u64, u8> = std::collections::HashMap::new();
    let mut seals = 0u64;
    let mut recovered = false;
    let mut quarantined: BTreeSet<BlockAddr> = BTreeSet::new();

    for rec in &contents.records {
        let p = rec.payload.as_slice();
        let bad = || ReplayError::BadFrame {
            tag: rec.tag,
            len: p.len(),
        };
        match rec.tag {
            TAG_TUPLE => {
                if p.len() != 40 + 64 + COUNTERS_BYTES {
                    return Err(bad());
                }
                let id = le_u64(p, 0);
                let addr = BlockAddr::new(le_u64(p, 8));
                let page = le_u64(p, 16);
                image.root = le_u64(p, 24);
                image.macs.insert(addr, MacTag::from_raw(le_u64(p, 32)));
                image.data.insert(addr, le_cipher(p, 40));
                image.counters.insert(page, le_counters(p, 104)?);
                complete_ids.insert(id);
            }
            TAG_TRIAD => {
                if p.len() != 24 + 64 + COUNTERS_BYTES {
                    return Err(bad());
                }
                let id = le_u64(p, 0);
                let addr = BlockAddr::new(le_u64(p, 8));
                let page = le_u64(p, 16);
                image.data.insert(addr, le_cipher(p, 24));
                image.counters.insert(page, le_counters(p, 88)?);
                *components.entry(id).or_insert(0) |= 3;
            }
            TAG_DATA => {
                if p.len() != 16 + 64 {
                    return Err(bad());
                }
                let id = le_u64(p, 0);
                image.data.insert(BlockAddr::new(le_u64(p, 8)), le_cipher(p, 16));
                *components.entry(id).or_insert(0) |= 1;
            }
            TAG_COUNTER => {
                if p.len() != 16 + COUNTERS_BYTES {
                    return Err(bad());
                }
                let id = le_u64(p, 0);
                image.counters.insert(le_u64(p, 8), le_counters(p, 16)?);
                *components.entry(id).or_insert(0) |= 2;
            }
            TAG_MAC => {
                if p.len() != 24 {
                    return Err(bad());
                }
                let id = le_u64(p, 0);
                image
                    .macs
                    .insert(BlockAddr::new(le_u64(p, 8)), MacTag::from_raw(le_u64(p, 16)));
                *components.entry(id).or_insert(0) |= 4;
            }
            TAG_ROOT => {
                if p.len() != 16 {
                    return Err(bad());
                }
                let id = le_u64(p, 0);
                image.root = le_u64(p, 8);
                *components.entry(id).or_insert(0) |= 8;
            }
            TAG_SEAL => {
                if p.len() != 16 {
                    return Err(bad());
                }
                image.root = le_u64(p, 8);
                seals += 1;
            }
            TAG_OVERFLOW => {
                if p.len() != 24 + 64 {
                    return Err(bad());
                }
                let id = le_u64(p, 0);
                let addr = BlockAddr::new(le_u64(p, 8));
                image.macs.insert(addr, MacTag::from_raw(le_u64(p, 16)));
                image.data.insert(addr, le_cipher(p, 24));
                complete_ids.insert(id);
            }
            TAG_REC_BLOCK => {
                if p.len() != 16 + 64 {
                    return Err(bad());
                }
                let addr = BlockAddr::new(le_u64(p, 0));
                image.macs.insert(addr, MacTag::from_raw(le_u64(p, 8)));
                image.data.insert(addr, le_cipher(p, 16));
            }
            TAG_REC_COUNTER => {
                if p.len() != 8 + COUNTERS_BYTES {
                    return Err(bad());
                }
                image.counters.insert(le_u64(p, 0), le_counters(p, 8)?);
            }
            TAG_REC_IDS => {
                if p.len() % 8 != 0 {
                    return Err(bad());
                }
                for off in (0..p.len()).step_by(8) {
                    complete_ids.insert(le_u64(p, off));
                }
            }
            TAG_REC_QUARANTINE => {
                if p.len() % 8 != 0 {
                    return Err(bad());
                }
                for off in (0..p.len()).step_by(8) {
                    quarantined.insert(BlockAddr::new(le_u64(p, off)));
                }
            }
            TAG_ROOT_COMMIT => {
                if p.len() != 16 {
                    return Err(bad());
                }
                image.root = le_u64(p, 0);
                seals = le_u64(p, 8);
                recovered = true;
            }
            tag => {
                return Err(ReplayError::BadFrame {
                    tag,
                    len: p.len(),
                })
            }
        }
    }
    let mut partial_ids = BTreeSet::new();
    for (id, mask) in components {
        if mask == 0b1111 {
            complete_ids.insert(id);
        } else {
            partial_ids.insert(id);
        }
    }
    Ok(ReplayedImage {
        header,
        image,
        complete_ids,
        partial_ids,
        seals,
        frames: contents.records.len(),
        torn_tail_bytes: contents.torn_tail_bytes,
        recovered,
        quarantined,
    })
}

/// What one durable-recovery attempt did to the on-device image.
#[derive(Debug)]
pub struct RecoveryWriteback {
    /// The repair analysis (same outcome `RecoveryManager::recover`
    /// returns for an in-memory image).
    pub outcome: crate::RecoveryOutcome,
    /// The image state *before* this attempt touched anything.
    pub replayed: ReplayedImage,
    /// Whether the image file was rewritten. `false` means the image
    /// was already a canonical recovered image and this attempt was a
    /// byte-identical no-op — the idempotence fixpoint.
    pub rewritten: bool,
}

fn fp_hit(reg: &mut Option<&mut FailpointRegistry>, point: Failpoint) {
    if let Some(r) = reg.as_deref_mut() {
        r.hit(point);
    }
}

/// Path of the scratch file recovery writes before its atomic rename.
pub fn recovery_scratch_path(image: &Path) -> std::path::PathBuf {
    let mut os = image.as_os_str().to_os_string();
    os.push(".rec");
    std::path::PathBuf::from(os)
}

/// Durable, crash-consistent recovery of the image at `path`.
///
/// Replays the image, runs `RecoveryManager::recover`, then makes the
/// repair itself durable: the canonical recovered image is written
/// frame-by-frame to a scratch file through the same write-through
/// medium the persist path uses, and committed over the original with
/// one atomic rename. A SIGKILL at any instant leaves either the
/// original image intact (commit not reached) or the fully recovered
/// one (commit done) — never a half-repaired image — so recovery is
/// idempotent and monotone under nested crashes.
///
/// The four recovery failpoints fire in order: `pre-repair` before
/// anything is decided, `mid-repair-writeback` before each scratch
/// frame, `pre-root-commit` after the scratch is complete, and
/// `post-root-commit` after the rename.
///
/// An image that is already canonical-recovered and agrees with the
/// fresh analysis is left untouched (`rewritten: false`).
pub fn recover_image(
    path: &Path,
    key: SipKey,
    manager: &crate::RecoveryManager,
    records: &[crate::PersistRecord],
    expected: &crate::ObserverExpectation,
    registry: Option<&mut FailpointRegistry>,
) -> Result<RecoveryWriteback, ReplayError> {
    let mut reg = registry;
    fp_hit(&mut reg, Failpoint::RecoveryPreRepair);
    let replayed = replay_image(path, key)?;
    let outcome = manager.recover(&replayed.image, records, expected);

    // Fixpoint test: a canonical recovered image whose fresh analysis
    // changes nothing is left byte-identical on disk.
    let quarantine_now: BTreeSet<BlockAddr> = outcome.quarantined().into_iter().collect();
    if replayed.recovered
        && replayed.torn_tail_bytes == 0
        && !outcome.root.needed_repair()
        && quarantine_now == replayed.quarantined
    {
        return Ok(RecoveryWriteback {
            outcome,
            replayed,
            rewritten: false,
        });
    }

    let scratch = recovery_scratch_path(path);
    let mut writer = ImageWriter::create(&scratch, &replayed.header)?;

    // Counter blocks first (they are what the adopted root is rebuilt
    // from), then surviving blocks, then the bookkeeping frames. All
    // iteration is sorted so the canonical image is deterministic.
    let mut pages: Vec<u64> = replayed.image.counters.keys().copied().collect();
    pages.sort_unstable();
    for page in pages {
        fp_hit(&mut reg, Failpoint::RecoveryMidWriteback);
        let counters = &replayed.image.counters[&page];
        let mut p = Vec::with_capacity(8 + COUNTERS_BYTES);
        p.extend_from_slice(&page.to_le_bytes());
        p.extend_from_slice(&counters.to_bytes());
        writer.append(TAG_REC_COUNTER, &p)?;
    }
    let mut addrs: Vec<BlockAddr> = replayed
        .image
        .data
        .keys()
        .filter(|a| replayed.image.macs.contains_key(a) && !quarantine_now.contains(a))
        .copied()
        .collect();
    addrs.sort();
    for addr in addrs {
        fp_hit(&mut reg, Failpoint::RecoveryMidWriteback);
        let mut p = Vec::with_capacity(16 + 64);
        p.extend_from_slice(&addr.index().to_le_bytes());
        p.extend_from_slice(&replayed.image.macs[&addr].raw().to_le_bytes());
        p.extend_from_slice(replayed.image.data[&addr].as_bytes());
        writer.append(TAG_REC_BLOCK, &p)?;
    }
    fp_hit(&mut reg, Failpoint::RecoveryMidWriteback);
    let mut ids = Vec::with_capacity(replayed.complete_ids.len() * 8);
    for id in &replayed.complete_ids {
        ids.extend_from_slice(&id.to_le_bytes());
    }
    writer.append(TAG_REC_IDS, &ids)?;
    if !quarantine_now.is_empty() {
        fp_hit(&mut reg, Failpoint::RecoveryMidWriteback);
        let mut q = Vec::with_capacity(quarantine_now.len() * 8);
        for addr in &quarantine_now {
            q.extend_from_slice(&addr.index().to_le_bytes());
        }
        writer.append(TAG_REC_QUARANTINE, &q)?;
    }
    let mut commit = Vec::with_capacity(16);
    commit.extend_from_slice(&outcome.adopted_root.to_le_bytes());
    commit.extend_from_slice(&replayed.seals.to_le_bytes());
    writer.append(TAG_ROOT_COMMIT, &commit)?;
    drop(writer);

    fp_hit(&mut reg, Failpoint::RecoveryPreRootCommit);
    std::fs::rename(&scratch, path).map_err(|_| ReplayError::Image(NvmError::ImageIo {
        op: "rename",
    }))?;
    fp_hit(&mut reg, Failpoint::RecoveryPostRootCommit);

    Ok(RecoveryWriteback {
        outcome,
        replayed,
        rewritten: true,
    })
}

#[cfg(test)]
mod tests {
    use std::path::PathBuf;

    use plp_events::Cycle;
    use plp_trace::spec;

    use super::*;
    use crate::failpoint::{Failpoint, FailpointPlan, FailpointRegistry};
    use crate::{PersistRecord, SimSetup, UpdateScheme};

    fn temp_image(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("plp-crash-{name}-{}.img", std::process::id()))
    }

    fn setup_for(scheme: UpdateScheme) -> SimSetup {
        let mut config = SystemConfig::for_scheme(scheme);
        config.record_persists = true;
        let profile = spec::benchmark("gcc").unwrap();
        SimSetup::for_profile(config, &profile, 7).unwrap()
    }

    /// A full (no-kill) file-backed run replays to exactly the image
    /// the in-memory reconstruction produces — byte-for-byte equality
    /// of data, MACs, counters and root.
    ///
    /// For tuple-atomic schemes the time-ordered reconstruction
    /// (`PersistImage::at_time`) is the golden: completions are
    /// monotonic, so time order and program order agree. The
    /// `unordered` baseline has no such guarantee — its component
    /// times genuinely reorder against program order — so its golden
    /// is the program-order fold of the same records (which is what
    /// the file, an append log, physically is).
    fn roundtrip_equals_in_memory(scheme: UpdateScheme, name: &str) {
        let setup = setup_for(scheme);
        let trace = setup.generate_trace(8_000);
        let path = temp_image(name);
        let mut sim = setup.simulation();
        sim.attach_durable_sink(DurableSink::create(&path, setup.config(), 7).unwrap());
        let (report, finished) = sim.run_with_state(&trace);
        assert_eq!(finished.durable_error(), None);

        let replayed = replay_image(&path, setup.config().key).unwrap();
        assert_eq!(replayed.torn_tail_bytes, 0);
        assert!(replayed.partial_ids.is_empty());
        assert_eq!(replayed.complete_ids.len(), report.records.len());
        if scheme == UpdateScheme::Unordered {
            let mut golden =
                PersistImage::fresh(setup.config().bmt, setup.config().key);
            for r in &report.records {
                golden.data.insert(r.addr, r.ciphertext);
                golden.macs.insert(r.addr, r.mac);
                golden
                    .counters
                    .insert(r.addr.page().index(), r.counters_after.clone());
            }
            golden.root = finished.architectural_root();
            assert_eq!(replayed.image, golden);
        } else {
            let in_memory = PersistImage::at_time(
                &report.records,
                Cycle::MAX,
                setup.config().bmt,
                setup.config().key,
            );
            assert_eq!(replayed.image, in_memory);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn sp_roundtrip_equals_in_memory() {
        roundtrip_equals_in_memory(UpdateScheme::Sp, "sp");
    }

    #[test]
    fn unordered_roundtrip_equals_in_memory() {
        roundtrip_equals_in_memory(UpdateScheme::Unordered, "unordered");
    }

    #[test]
    fn coalescing_roundtrip_equals_in_memory() {
        roundtrip_equals_in_memory(UpdateScheme::Coalescing, "coalescing");
    }

    #[test]
    fn triad_roundtrip_equals_in_memory() {
        roundtrip_equals_in_memory(UpdateScheme::TriadNvm, "triad");
    }

    #[test]
    fn phoenix_roundtrip_equals_in_memory() {
        roundtrip_equals_in_memory(UpdateScheme::Phoenix, "phoenix");
    }

    /// A kill inside `triad_nvm`'s relaxed flush window leaves the
    /// strict data/counter slice durable and the id *partial*: fresh
    /// data with no MAC — the detected-loss signature recovery must
    /// flag, never silently accept.
    #[test]
    fn triad_frames_split_the_tuple_at_the_relaxed_window() {
        let path = temp_image("triad-window");
        let config = SystemConfig::for_scheme(UpdateScheme::TriadNvm);
        let mut sink = DurableSink::create(&path, &config, 7).unwrap();
        let cipher = DataBlock::from_u64(42);
        let mut counters = CounterBlock::default();
        counters.bump(0);
        // Persist 1 completes: the slice, then MAC and root after the
        // relaxed window.
        sink.triad(&TriadFrame {
            id: 1,
            addr: BlockAddr::new(8),
            page: 1,
            cipher: &cipher,
            counters: &counters,
        });
        sink.mac_tag(1, BlockAddr::new(8), MacTag::from_raw(0xAB));
        sink.root(1, 0xCD);
        // Persist 2 is killed inside the relaxed window: slice only.
        sink.triad(&TriadFrame {
            id: 2,
            addr: BlockAddr::new(9),
            page: 1,
            cipher: &cipher,
            counters: &counters,
        });
        assert_eq!(sink.error(), None);
        drop(sink);

        let replayed = replay_image(&path, config.key).unwrap();
        assert_eq!(replayed.complete_ids, BTreeSet::from([1]));
        assert_eq!(replayed.partial_ids, BTreeSet::from([2]));
        // The stranded pair is durable — data and counters on disk —
        // but its MAC never arrived.
        assert!(replayed.image.data.contains_key(&BlockAddr::new(9)));
        assert!(!replayed.image.macs.contains_key(&BlockAddr::new(9)));
        assert_eq!(replayed.image.root, 0xCD);
        std::fs::remove_file(&path).unwrap();
    }

    /// A torn triad frame (the armed mid-tuple kill inside the strict
    /// slice) is discarded whole: an interrupted slice leaves no
    /// partial state, exactly like a torn 2SP tuple.
    #[test]
    fn torn_triad_frame_is_discarded() {
        let path = temp_image("triad-torn");
        let config = SystemConfig::for_scheme(UpdateScheme::TriadNvm);
        let mut sink = DurableSink::create(&path, &config, 7).unwrap();
        let cipher = DataBlock::from_u64(7);
        let counters = CounterBlock::default();
        sink.triad(&TriadFrame {
            id: 1,
            addr: BlockAddr::new(1),
            page: 0,
            cipher: &cipher,
            counters: &counters,
        });
        sink.triad_torn(&TriadFrame {
            id: 2,
            addr: BlockAddr::new(2),
            page: 0,
            cipher: &cipher,
            counters: &counters,
        });
        drop(sink);
        let replayed = replay_image(&path, config.key).unwrap();
        assert!(replayed.torn_tail_bytes > 0);
        // Id 1's slice survives (partial: its MAC/root never landed);
        // the torn id 2 vanishes entirely.
        assert_eq!(replayed.partial_ids, BTreeSet::from([1]));
        assert!(replayed.complete_ids.is_empty());
        assert!(!replayed.image.data.contains_key(&BlockAddr::new(2)));
        std::fs::remove_file(&path).unwrap();
    }

    /// A torn tuple frame (the armed mid-tuple kill) cuts the image at
    /// a tuple boundary: the replayed image equals the golden model
    /// restricted to the persists that are fully on disk.
    #[test]
    fn torn_tuple_cuts_at_tuple_boundary() {
        let setup = setup_for(UpdateScheme::Sp);
        let trace = setup.generate_trace(8_000);
        let path = temp_image("torn-cut");
        let mut sim = setup.simulation();
        sim.attach_durable_sink(DurableSink::create(&path, setup.config(), 7).unwrap());
        sim.arm_failpoints(FailpointRegistry::observe(FailpointPlan {
            point: Failpoint::MidTuple,
            hit: 100,
        }));
        let (report, finished) = sim.run_with_state(&trace);
        let fired = finished.fired_failpoint().expect("failpoint must fire");
        assert_eq!(fired.persist, 101);

        let replayed = replay_image(&path, setup.config().key).unwrap();
        // The torn frame (and, in this in-process stand-in, everything
        // appended after it) is discarded; the surviving prefix is the
        // 100 complete tuples before the armed kill.
        assert!(replayed.torn_tail_bytes > 0);
        assert_eq!(
            replayed.complete_ids,
            (1..=100).collect::<std::collections::BTreeSet<u64>>()
        );
        let cut: Vec<PersistRecord> = report
            .records
            .iter()
            .filter(|r| replayed.complete_ids.contains(&r.id.0))
            .cloned()
            .collect();
        let golden =
            PersistImage::at_time(&cut, Cycle::MAX, setup.config().bmt, setup.config().key);
        assert_eq!(replayed.image, golden);
        std::fs::remove_file(&path).unwrap();
    }

    /// Unordered kills mid-tuple leave genuinely partial component
    /// state on disk.
    #[test]
    fn unordered_mid_tuple_leaves_partial_components() {
        let setup = setup_for(UpdateScheme::Unordered);
        let trace = setup.generate_trace(8_000);
        let path = temp_image("unordered-partial");
        let mut sim = setup.simulation();
        sim.attach_durable_sink(DurableSink::create(&path, setup.config(), 7).unwrap());
        // Unordered visits mid-tuple three times per persist; hit 301
        // lands after the counter component of persist 101.
        sim.arm_failpoints(FailpointRegistry::observe(FailpointPlan {
            point: Failpoint::MidTuple,
            hit: 301,
        }));
        let (_, finished) = sim.run_with_state(&trace);
        let fired = finished.fired_failpoint().expect("failpoint must fire");
        assert_eq!(fired.persist, 101);
        // In observe mode the run continues past the armed hit; the
        // harness child would have been killed there. Replaying the
        // *whole* image still yields only complete tuples, so instead
        // truncate the image to the kill instant by dropping frames:
        // covered end-to-end by the crash_harness integration; here we
        // just confirm component frames exist at all.
        let replayed = replay_image(&path, setup.config().key).unwrap();
        assert!(replayed.partial_ids.is_empty());
        assert!(replayed.complete_ids.len() > 100);
        std::fs::remove_file(&path).unwrap();
    }

    /// Observer expectation for the completely-persisted prefix: the
    /// program-order fold the crash harness judges against.
    fn expectation_for(
        records: &[PersistRecord],
        complete: &BTreeSet<u64>,
    ) -> crate::ObserverExpectation {
        let mut plaintexts = std::collections::HashMap::new();
        for r in records.iter().filter(|r| complete.contains(&r.id.0)) {
            plaintexts.insert(r.addr, r.plaintext);
        }
        crate::ObserverExpectation { plaintexts }
    }

    /// Durable recovery of a torn image commits a canonical recovered
    /// image (complete ids preserved, adopted root persisted), and a
    /// second recovery is a byte-identical no-op fixpoint.
    #[test]
    fn recover_image_commits_then_fixpoints() {
        let setup = setup_for(UpdateScheme::Sp);
        let trace = setup.generate_trace(8_000);
        let path = temp_image("recover-commit");
        let mut sim = setup.simulation();
        sim.attach_durable_sink(DurableSink::create(&path, setup.config(), 7).unwrap());
        sim.arm_failpoints(FailpointRegistry::observe(FailpointPlan {
            point: Failpoint::MidTuple,
            hit: 100,
        }));
        let (report, _) = sim.run_with_state(&trace);

        let key = setup.config().key;
        let manager = crate::RecoveryManager::for_config(setup.config());
        let before = replay_image(&path, key).unwrap();
        assert!(!before.recovered);
        let expected = expectation_for(&report.records, &before.complete_ids);

        // Observe-mode registry so recovery failpoints count hits.
        let mut reg = FailpointRegistry::observe(FailpointPlan {
            point: Failpoint::RecoveryPreRootCommit,
            hit: 0,
        });
        let wb = recover_image(&path, key, &manager, &report.records, &expected, Some(&mut reg))
            .unwrap();
        assert!(wb.rewritten);
        assert_eq!(wb.outcome.verdict(), crate::FaultVerdict::Clean);
        assert_eq!(reg.hit_count(Failpoint::RecoveryPreRepair), 1);
        assert!(reg.hit_count(Failpoint::RecoveryMidWriteback) > 1);
        assert_eq!(reg.hit_count(Failpoint::RecoveryPreRootCommit), 1);
        assert_eq!(reg.hit_count(Failpoint::RecoveryPostRootCommit), 1);
        assert!(reg.fired().is_some());

        let after = replay_image(&path, key).unwrap();
        assert!(after.recovered);
        assert_eq!(after.torn_tail_bytes, 0);
        assert_eq!(after.complete_ids, before.complete_ids);
        assert_eq!(after.image.root, wb.outcome.adopted_root);
        assert_eq!(after.image.counters, before.image.counters);
        assert!(!recovery_scratch_path(&path).exists());

        // Second recovery: byte-identical fixpoint, no rewrite.
        let bytes1 = std::fs::read(&path).unwrap();
        let wb2 = recover_image(&path, key, &manager, &report.records, &expected, None).unwrap();
        assert!(!wb2.rewritten);
        assert_eq!(wb2.outcome.verdict(), crate::FaultVerdict::Clean);
        assert_eq!(std::fs::read(&path).unwrap(), bytes1);
        std::fs::remove_file(&path).unwrap();
    }

    /// Quarantined addresses stay quarantined across recoveries: their
    /// data never comes back, and the second pass re-detects exactly
    /// the same loss (monotone, never silently "healed").
    #[test]
    fn recover_image_quarantine_is_sticky() {
        let setup = setup_for(UpdateScheme::Sp);
        let trace = setup.generate_trace(8_000);
        let path = temp_image("recover-quarantine");
        let mut sim = setup.simulation();
        sim.attach_durable_sink(DurableSink::create(&path, setup.config(), 7).unwrap());
        let (report, _) = sim.run_with_state(&trace);

        let key = setup.config().key;
        let manager = crate::RecoveryManager::for_config(setup.config());
        let before = replay_image(&path, key).unwrap();
        // Expect one extra block the image never persisted completely:
        // recovery must quarantine it (missing data fails its MAC).
        let mut expected = expectation_for(&report.records, &before.complete_ids);
        let ghost = BlockAddr::new(u64::MAX - 1);
        expected.plaintexts.insert(ghost, Default::default());

        let wb = recover_image(&path, key, &manager, &report.records, &expected, None).unwrap();
        assert!(wb.rewritten);
        assert_eq!(wb.outcome.quarantined(), vec![ghost]);
        let mid = replay_image(&path, key).unwrap();
        assert_eq!(mid.quarantined.iter().copied().collect::<Vec<_>>(), vec![ghost]);

        let wb2 = recover_image(&path, key, &manager, &report.records, &expected, None).unwrap();
        assert!(!wb2.rewritten);
        assert_eq!(wb2.outcome.quarantined(), vec![ghost]);
        assert_eq!(
            wb2.outcome.verdict(),
            crate::FaultVerdict::DetectedLoss
        );
        std::fs::remove_file(&path).unwrap();
    }

    /// Replay rejects malformed frames with typed errors, never a
    /// panic.
    #[test]
    fn replay_rejects_malformed_frames() {
        let path = temp_image("malformed");
        let config = SystemConfig::for_scheme(UpdateScheme::Sp);
        let mut sink = DurableSink::create(&path, &config, 7).unwrap();
        sink.root(1, 0xdead);
        drop(sink);
        // Append a checksummed frame with an unknown tag.
        {
            let contents = plp_nvm::read_image(&path).unwrap();
            let mut w = ImageWriter::create(&path, &contents.header).unwrap();
            for r in &contents.records {
                w.append(r.tag, &r.payload).unwrap();
            }
            w.append(99, &[1, 2, 3]).unwrap();
        }
        let err = replay_image(&path, config.key).unwrap_err();
        assert_eq!(err, ReplayError::BadFrame { tag: 99, len: 3 });

        // A root frame with the wrong payload size is a producer bug.
        {
            let header = ImageHeader {
                arity: config.bmt.arity(),
                levels: config.bmt.levels(),
                seed: 7,
                scheme: "sp".to_string(),
            };
            let mut w = ImageWriter::create(&path, &header).unwrap();
            w.append(TAG_ROOT, &[0; 7]).unwrap();
        }
        let err = replay_image(&path, config.key).unwrap_err();
        assert_eq!(
            err,
            ReplayError::BadFrame {
                tag: TAG_ROOT,
                len: 7
            }
        );
        std::fs::remove_file(&path).unwrap();
    }
}
