//! The crash-recovery memory tuple and per-persist records.

use plp_crypto::{CounterBlock, DataBlock, MacTag};
use plp_events::addr::BlockAddr;
use plp_events::Cycle;
use serde::{Deserialize, Serialize};

/// Identifier of a persist, in program order.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PersistId(pub u64);

impl std::fmt::Display for PersistId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "δ{}", self.0)
    }
}

/// Identifier of an epoch, in program order.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct EpochId(pub u64);

impl std::fmt::Display for EpochId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// When each component of a persist's memory tuple became durable.
///
/// Invariant 1 says correct recovery needs the whole tuple
/// `(C, γ, M, R)`; crash-recovery analysis replays these timestamps to
/// decide which components a crash at time `T` captured. Correct (2SP)
/// engines set all four equal to the persist completion; the
/// `unordered` strawman lets them diverge — which is exactly how it
/// violates the invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TupleTimes {
    /// Ciphertext durable.
    pub data: Cycle,
    /// Counter durable.
    pub counter: Cycle,
    /// MAC durable.
    pub mac: Cycle,
    /// BMT root updated with this persist's effect.
    pub root: Cycle,
}

impl TupleTimes {
    /// All four components persist atomically at `t` (the 2SP
    /// guarantee).
    pub fn atomic(t: Cycle) -> Self {
        TupleTimes {
            data: t,
            counter: t,
            mac: t,
            root: t,
        }
    }

    /// The time the full tuple is durable.
    pub fn complete(&self) -> Cycle {
        self.data.max(self.counter).max(self.mac).max(self.root)
    }
}

/// The complete record of one persist: its memory tuple plus timing.
///
/// Records are kept when [`crate::SystemConfig::record_persists`] is
/// set; the crash-recovery machinery replays them to build the durable
/// image at an arbitrary crash point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PersistRecord {
    /// Program-order persist id.
    pub id: PersistId,
    /// Epoch the persist belongs to (all-zero under strict
    /// persistency).
    pub epoch: EpochId,
    /// Data block address.
    pub addr: BlockAddr,
    /// Plaintext the crash-recovery observer expects back.
    pub plaintext: DataBlock,
    /// Ciphertext written to memory.
    pub ciphertext: DataBlock,
    /// The page's counter block *after* this persist's bump.
    pub counters_after: CounterBlock,
    /// Stateful MAC over `(ciphertext, addr, counter)`.
    pub mac: MacTag,
    /// When the persist was issued to the engine.
    pub issued_at: Cycle,
    /// When each tuple component became durable.
    pub times: TupleTimes,
}

impl PersistRecord {
    /// When the whole tuple is durable (recovery-safe point).
    pub fn completed_at(&self) -> Cycle {
        self.times.complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_times_are_equal() {
        let t = TupleTimes::atomic(Cycle::new(100));
        assert_eq!(t.data, t.root);
        assert_eq!(t.complete(), Cycle::new(100));
    }

    #[test]
    fn complete_is_max_component() {
        let t = TupleTimes {
            data: Cycle::new(10),
            counter: Cycle::new(50),
            mac: Cycle::new(20),
            root: Cycle::new(40),
        };
        assert_eq!(t.complete(), Cycle::new(50));
    }

    #[test]
    fn ids_display() {
        assert_eq!(PersistId(3).to_string(), "δ3");
        assert_eq!(EpochId(2).to_string(), "E2");
    }
}
