//! The persist-gathering write pending queue (WPQ) and the 2-step
//! persist (2SP) mechanism of §IV-A1.
//!
//! The WPQ sits in the memory controller inside the ADR persistence
//! domain. Step 1 gathers and locks a persist's memory-tuple
//! components (flagged incomplete); step 2 flags completion once the
//! ciphertext, counter, MAC and BMT-root acknowledgement have all
//! arrived, after which the blocks may drain to NVMM. On power failure
//! incomplete entries are invalidated — that is what makes the tuple
//! persist atomic.

use std::collections::VecDeque;

use plp_events::Cycle;
use serde::{Deserialize, Serialize};

use crate::PersistId;

/// Gathering state of one WPQ entry (step 1 of 2SP).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WpqEntry {
    /// The persist this entry gathers.
    pub id: PersistId,
    /// Ciphertext arrived.
    pub data: bool,
    /// Counter arrived.
    pub counter: bool,
    /// MAC arrived.
    pub mac: bool,
    /// BMT root update acknowledged.
    pub root_ack: bool,
}

impl WpqEntry {
    /// Whether the full tuple has gathered (step 2 may flag complete).
    pub fn is_complete(&self) -> bool {
        self.data && self.counter && self.mac && self.root_ack
    }
}

/// Timing + occupancy model of the WPQ.
///
/// Entries occupy a slot from admission until their persist completes;
/// a full queue back-pressures the core — the §VII WPQ-size sweep
/// (4–64 entries, ~12% penalty at 4) exercises exactly this.
#[derive(Debug, Clone)]
pub struct Wpq {
    capacity: usize,
    /// Completion times of in-flight persists, oldest first.
    inflight: VecDeque<Cycle>,
    stall_cycles: u64,
    peak: usize,
    admitted: u64,
}

impl Wpq {
    /// Creates an empty WPQ.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "WPQ needs at least one entry");
        Wpq {
            capacity,
            // The queue never holds more than capacity + 1 entries
            // (admit pops before pushing past the cap), so one up-front
            // reservation keeps admission reallocation-free for good.
            inflight: VecDeque::with_capacity(capacity + 1),
            stall_cycles: 0,
            peak: 0,
            admitted: 0,
        }
    }

    /// Admits a new persist at or after `now`, returning the admission
    /// time (later than `now` only when the queue is full and the
    /// oldest completion must be awaited).
    pub fn admit(&mut self, now: Cycle) -> Cycle {
        while self.inflight.front().is_some_and(|&t| t <= now) {
            self.inflight.pop_front();
        }
        self.peak = self.peak.max(self.inflight.len() + 1);
        self.admitted += 1;
        if self.inflight.len() < self.capacity {
            now
        } else {
            // A full queue is never empty (capacity >= 1); the
            // fallback keeps this total without a panic path.
            let freed = self.inflight.pop_front().unwrap_or(now).max(now);
            self.stall_cycles += (freed - now).get();
            freed
        }
    }

    /// Registers the admitted persist's completion time (step 2: the
    /// entry drains once complete).
    pub fn complete_at(&mut self, completion: Cycle) {
        self.inflight.push_back(completion);
    }

    /// Total cycles admissions waited on a full queue.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// Number of admissions.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Completion time of the most recently registered persist.
    pub fn last_completion(&self) -> Cycle {
        self.inflight.back().copied().unwrap_or(Cycle::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_completes_only_with_full_tuple() {
        let mut e = WpqEntry {
            id: PersistId(1),
            ..WpqEntry::default()
        };
        assert!(!e.is_complete());
        e.data = true;
        e.counter = true;
        e.mac = true;
        assert!(!e.is_complete(), "root ack still missing");
        e.root_ack = true;
        assert!(e.is_complete());
    }

    #[test]
    fn admission_is_free_below_capacity() {
        let mut q = Wpq::new(4);
        for i in 0..4 {
            assert_eq!(q.admit(Cycle::new(i)), Cycle::new(i));
            q.complete_at(Cycle::new(1000 + i));
        }
        assert_eq!(q.stall_cycles(), 0);
        assert_eq!(q.admitted(), 4);
    }

    #[test]
    fn full_queue_stalls_until_oldest_completes() {
        let mut q = Wpq::new(2);
        q.admit(Cycle::ZERO);
        q.complete_at(Cycle::new(100));
        q.admit(Cycle::ZERO);
        q.complete_at(Cycle::new(200));
        // Third admission at t=10 must wait for the t=100 completion.
        assert_eq!(q.admit(Cycle::new(10)), Cycle::new(100));
        assert_eq!(q.stall_cycles(), 90);
    }

    #[test]
    fn completed_entries_free_slots() {
        let mut q = Wpq::new(1);
        q.admit(Cycle::ZERO);
        q.complete_at(Cycle::new(50));
        // By t=60 the entry has drained; no stall.
        assert_eq!(q.admit(Cycle::new(60)), Cycle::new(60));
        assert_eq!(q.stall_cycles(), 0);
        assert_eq!(q.peak_occupancy(), 1);
    }

    #[test]
    fn last_completion_tracks_tail() {
        let mut q = Wpq::new(8);
        assert_eq!(q.last_completion(), Cycle::ZERO);
        q.admit(Cycle::ZERO);
        q.complete_at(Cycle::new(77));
        assert_eq!(q.last_completion(), Cycle::new(77));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Wpq::new(0);
    }
}
