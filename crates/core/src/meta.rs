//! Security-metadata address mapping and the discrete metadata caches.
//!
//! Counters, MACs and BMT nodes live in their own memory regions and
//! are cached in three separate on-chip metadata caches (§V assumes a
//! discrete counter cache, BMT cache and MAC cache). This module maps
//! each metadata item to the 64-byte memory block that holds it and
//! wraps the three caches.

use plp_bmt::NodeLabel;
use plp_cache::{Cache, CacheConfig, CacheStats};
use plp_events::addr::BlockAddr;
use serde::{Deserialize, Serialize};

/// Base block index of the counter region (beyond any data address the
/// traces generate).
pub const COUNTER_REGION_BASE: u64 = 1 << 40;
/// Base block index of the MAC region.
pub const MAC_REGION_BASE: u64 = 1 << 41;
/// Base block index of the BMT node region.
pub const BMT_REGION_BASE: u64 = 1 << 42;

/// The memory block holding page `page`'s split-counter block (one
/// 64-byte counter block per 4 KiB page).
pub fn counter_block_addr(page: u64) -> BlockAddr {
    BlockAddr::new(COUNTER_REGION_BASE + page)
}

/// The memory block holding the MAC of data block `data`. MACs are
/// 8 bytes, so eight neighbouring blocks share a MAC block.
pub fn mac_block_addr(data: BlockAddr) -> BlockAddr {
    BlockAddr::new(MAC_REGION_BASE + data.index() / 8)
}

/// The memory block holding BMT node `label`. Node values are 8 bytes,
/// so eight sibling nodes share a block.
pub fn bmt_node_block_addr(label: NodeLabel) -> BlockAddr {
    BlockAddr::new(BMT_REGION_BASE + label.raw() / 8)
}

/// Base block index of the `phoenix` shadow-root region: the dual-copy
/// root commit writes here, a distinct device block from the working
/// root's BMT node block so the two copies never write-combine.
pub const SHADOW_ROOT_REGION_BASE: u64 = 1 << 43;

/// The memory block holding the `phoenix` shadow copy of the root.
pub fn shadow_root_block_addr() -> BlockAddr {
    BlockAddr::new(SHADOW_ROOT_REGION_BASE)
}

/// Hit/miss statistics for the three metadata caches.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetadataStats {
    /// Counter-cache statistics.
    pub counter: CacheStats,
    /// MAC-cache statistics.
    pub mac: CacheStats,
    /// BMT-cache statistics.
    pub bmt: CacheStats,
}

/// The three discrete metadata caches.
#[derive(Debug, Clone)]
pub struct MetadataCaches {
    counter: Cache,
    mac: Cache,
    bmt: Cache,
    /// Ideal mode: every lookup hits (Fig. 9's MDC configuration).
    ideal: bool,
}

impl MetadataCaches {
    /// Creates the three caches, each `bytes` large and 8-way (the
    /// paper's metadata-cache shape).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is not a valid 8-way cache size.
    pub fn new(bytes: usize, ideal: bool) -> Self {
        MetadataCaches {
            counter: Cache::new(CacheConfig::new(bytes, 8)),
            mac: Cache::new(CacheConfig::new(bytes, 8)),
            bmt: Cache::new(CacheConfig::new(bytes, 8)),
            ideal,
        }
    }

    /// Whether the caches are in ideal (always-hit) mode.
    pub fn is_ideal(&self) -> bool {
        self.ideal
    }

    /// Looks up a counter block for page `page`; returns `true` on hit.
    /// On miss the caller fetches and the line is filled dirty-on-write.
    pub fn access_counter(&mut self, page: u64, write: bool) -> bool {
        Self::access(&mut self.counter, counter_block_addr(page), write, self.ideal)
    }

    /// Looks up the MAC block for data block `data`.
    pub fn access_mac(&mut self, data: BlockAddr, write: bool) -> bool {
        Self::access(&mut self.mac, mac_block_addr(data), write, self.ideal)
    }

    /// Looks up the BMT node block for `label`.
    pub fn access_bmt(&mut self, label: NodeLabel, write: bool) -> bool {
        Self::access(&mut self.bmt, bmt_node_block_addr(label), write, self.ideal)
    }

    fn access(cache: &mut Cache, addr: BlockAddr, write: bool, ideal: bool) -> bool {
        if ideal {
            return true;
        }
        if cache.lookup(addr, write).is_hit() {
            true
        } else {
            cache.fill(addr, write);
            false
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> MetadataStats {
        MetadataStats {
            counter: self.counter.stats(),
            mac: self.mac.stats(),
            bmt: self.bmt.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let c = counter_block_addr(u32::MAX as u64);
        let m = mac_block_addr(BlockAddr::new(u32::MAX as u64));
        let b = bmt_node_block_addr(NodeLabel::new(u32::MAX as u64));
        assert!(c.index() < MAC_REGION_BASE);
        assert!(m.index() < BMT_REGION_BASE);
        assert!(b.index() >= BMT_REGION_BASE);
    }

    #[test]
    fn macs_pack_eight_per_block() {
        let a = mac_block_addr(BlockAddr::new(0));
        let b = mac_block_addr(BlockAddr::new(7));
        let c = mac_block_addr(BlockAddr::new(8));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bmt_nodes_pack_eight_per_block() {
        assert_eq!(
            bmt_node_block_addr(NodeLabel::new(0)),
            bmt_node_block_addr(NodeLabel::new(7))
        );
        assert_ne!(
            bmt_node_block_addr(NodeLabel::new(7)),
            bmt_node_block_addr(NodeLabel::new(8))
        );
    }

    #[test]
    fn miss_then_hit() {
        let mut m = MetadataCaches::new(32 << 10, false);
        assert!(!m.access_counter(5, false));
        assert!(m.access_counter(5, true));
        assert_eq!(m.stats().counter.hits, 1);
        assert_eq!(m.stats().counter.misses, 1);
    }

    #[test]
    fn ideal_mode_always_hits() {
        let mut m = MetadataCaches::new(32 << 10, true);
        assert!(m.is_ideal());
        for page in 0..10_000 {
            assert!(m.access_counter(page, true));
        }
        assert_eq!(m.stats().counter.misses, 0);
        // Ideal mode records nothing at all.
        assert_eq!(m.stats().counter.hits, 0);
    }

    #[test]
    fn three_caches_are_independent() {
        let mut m = MetadataCaches::new(32 << 10, false);
        m.access_counter(1, false);
        assert_eq!(m.stats().mac.misses, 0);
        m.access_mac(BlockAddr::new(1), false);
        m.access_bmt(NodeLabel::new(1), false);
        assert_eq!(m.stats().counter.misses, 1);
        assert_eq!(m.stats().mac.misses, 1);
        assert_eq!(m.stats().bmt.misses, 1);
    }
}
