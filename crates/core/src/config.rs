//! System configuration: every knob the paper's evaluation sweeps.

use plp_bmt::BmtGeometry;
use plp_crypto::SipKey;
use plp_events::Cycle;
use plp_nvm::NvmConfig;
use serde::{Deserialize, Serialize};

use crate::sanitizer::SanitizerMode;
use crate::ConfigError;

/// Which BMT update mechanism the security engine uses — the six
/// schemes of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateScheme {
    /// `secure_WB`: write-back caches, no persistency model. LLC dirty
    /// evictions update the BMT sequentially. The normalization
    /// baseline.
    SecureWb,
    /// `unordered`: write-through persists without Invariant 2 (no BMT
    /// root-update ordering) — the paper's deliberately broken
    /// strawman. Fast but NOT crash-recovery correct. (The actual
    /// relaxed-tree design from the related literature is modeled by
    /// [`UpdateScheme::TriadNvm`], which persists a strict lower slice
    /// of the tree instead of nothing.)
    Unordered,
    /// `sp`: strict persistency with fully sequential leaf-to-root
    /// updates per persist.
    Sp,
    /// `pipeline`: strict persistency with PLP mechanism 1 — in-order
    /// pipelined BMT updates through the PTT.
    Pipeline,
    /// `o3`: epoch persistency with PLP mechanism 2 — out-of-order
    /// updates within an epoch, in-order (pipelined) across epochs via
    /// the ETT.
    O3,
    /// `coalescing`: `o3` plus PLP mechanism 3 — LCA update coalescing.
    Coalescing,
    /// `sp_ctree`: strict persistency over an SGX-style counter tree —
    /// the §V-D extension, where the *whole* update path must persist
    /// instead of just the root. Not part of the paper's Table IV; it
    /// quantifies why the paper sticks to Bonsai Merkle Trees.
    SpCounterTree,
    /// `triad_nvm`: relaxed tree-level persistence from the related
    /// literature — each persist strictly updates the leaf plus the
    /// [`SystemConfig::triad_persisted_levels`] deepest BMT levels and
    /// leaves everything above (root included) to the metadata cache,
    /// flushed lazily. Runtime sits between `unordered` and `sp`;
    /// recovery only rebuilds the small un-persisted upper slice. A
    /// crash inside the lazy-flush window strands the data/counter
    /// pair without its MAC, so losses are always *detected* (never
    /// silent), and only above the persisted level.
    TriadNvm,
    /// `phoenix`: a persistently secure counter tree with a dual-copy
    /// (shadow) root commit, from the related literature. Every node
    /// of the update path is written through to NVM and the root is
    /// committed twice (working + shadow copy), so recovery rebuilds
    /// nothing — the highest runtime in the zoo buys near-instant,
    /// size-independent recovery.
    Phoenix,
}

impl UpdateScheme {
    /// All schemes, in the paper's Table IV order.
    pub fn all() -> [UpdateScheme; 6] {
        [
            UpdateScheme::SecureWb,
            UpdateScheme::Unordered,
            UpdateScheme::Sp,
            UpdateScheme::Pipeline,
            UpdateScheme::O3,
            UpdateScheme::Coalescing,
        ]
    }

    /// Table IV's schemes plus this repo's §V-D counter-tree
    /// extension and the related-literature zoo.
    pub fn all_extended() -> [UpdateScheme; 9] {
        [
            UpdateScheme::SecureWb,
            UpdateScheme::Unordered,
            UpdateScheme::Sp,
            UpdateScheme::Pipeline,
            UpdateScheme::O3,
            UpdateScheme::Coalescing,
            UpdateScheme::SpCounterTree,
            UpdateScheme::TriadNvm,
            UpdateScheme::Phoenix,
        ]
    }

    /// The related-literature schemes (ROADMAP item 2's zoo): designs
    /// that trade runtime overhead against recovery latency, measured
    /// on this harness because no single paper ever could.
    pub fn zoo() -> [UpdateScheme; 2] {
        [UpdateScheme::TriadNvm, UpdateScheme::Phoenix]
    }

    /// The strict-persistency comparison schemes (Fig. 8): every
    /// write-through per-store scheme over the BMT, the unordered
    /// strawman included.
    pub fn strict() -> [UpdateScheme; 3] {
        [
            UpdateScheme::Unordered,
            UpdateScheme::Sp,
            UpdateScheme::Pipeline,
        ]
    }

    /// The epoch-persistency schemes (Fig. 10).
    pub fn epoch() -> [UpdateScheme; 2] {
        [UpdateScheme::O3, UpdateScheme::Coalescing]
    }

    /// Every persisting scheme the evaluation measures against the
    /// `secure_WB` baseline: [`UpdateScheme::strict`] then
    /// [`UpdateScheme::epoch`], in Table IV order.
    pub fn persisting() -> [UpdateScheme; 5] {
        [
            UpdateScheme::Unordered,
            UpdateScheme::Sp,
            UpdateScheme::Pipeline,
            UpdateScheme::O3,
            UpdateScheme::Coalescing,
        ]
    }

    /// The crash-recovery-correct persisting schemes — the ones that
    /// enforce Invariant 2 (or, for `phoenix`, persist the whole tree)
    /// and must pass the fault sweeps with no loss at any crash point.
    pub fn correct() -> [UpdateScheme; 5] {
        [
            UpdateScheme::Sp,
            UpdateScheme::Pipeline,
            UpdateScheme::O3,
            UpdateScheme::Coalescing,
            UpdateScheme::Phoenix,
        ]
    }

    /// The paper's name for the scheme.
    pub fn name(self) -> &'static str {
        match self {
            UpdateScheme::SecureWb => "secure_WB",
            UpdateScheme::Unordered => "unordered",
            UpdateScheme::Sp => "sp",
            UpdateScheme::Pipeline => "pipeline",
            UpdateScheme::O3 => "o3",
            UpdateScheme::Coalescing => "coalescing",
            UpdateScheme::SpCounterTree => "sp_ctree",
            UpdateScheme::TriadNvm => "triad_nvm",
            UpdateScheme::Phoenix => "phoenix",
        }
    }

    /// Parses a [`UpdateScheme::name`] rendering.
    pub fn parse(name: &str) -> Option<Self> {
        Self::all_extended().into_iter().find(|s| s.name() == name)
    }

    /// Whether the scheme persists stores through epochs (epoch
    /// persistency) rather than one by one (strict persistency).
    pub fn is_epoch_based(self) -> bool {
        matches!(self, UpdateScheme::O3 | UpdateScheme::Coalescing)
    }

    /// Whether every store is persisted individually and synchronously
    /// ordered (the strict-persistency family, plus the unordered
    /// strawman which persists per-store but skips root ordering).
    pub fn is_store_persisting(self) -> bool {
        matches!(
            self,
            UpdateScheme::Sp
                | UpdateScheme::Pipeline
                | UpdateScheme::Unordered
                | UpdateScheme::SpCounterTree
                | UpdateScheme::TriadNvm
                | UpdateScheme::Phoenix
        )
    }
}

impl std::fmt::Display for UpdateScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which memory regions persist (Table IV's `_full` suffix).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtectionScope {
    /// Persist only non-stack stores (the paper's default: heap and
    /// static/global regions).
    #[default]
    NonStack,
    /// Persist every store, stack included (`_full`).
    Full,
}

/// Full system configuration (Table III defaults).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// BMT update scheme.
    pub scheme: UpdateScheme,
    /// Which stores persist.
    pub scope: ProtectionScope,
    /// MAC/hash unit latency in cycles (Table III default 40; Fig. 9
    /// sweeps {0, 20, 40, 80}).
    pub mac_latency: Cycle,
    /// Ideal metadata caches: never miss, zero-latency MAC (Fig. 9's
    /// `MDC` configuration).
    pub ideal_metadata: bool,
    /// Epoch size in stores (Table III default 32; Figs. 11–12 sweep
    /// 4..256).
    pub epoch_size: usize,
    /// Write-pending-queue entries (default 32; §VII sweeps 4..64).
    pub wpq_entries: usize,
    /// Persist-tracking-table entries (default 64).
    pub ptt_entries: usize,
    /// Epoch-tracking-table entries: concurrent epochs (default 2).
    pub ett_entries: usize,
    /// Last-level-cache capacity in bytes (default 4 MB; §VII sweeps
    /// 1–4 MB).
    pub llc_bytes: usize,
    /// Capacity of each metadata cache (counter/MAC/BMT) in bytes
    /// (default 128 KB; §VII sweeps 32–256 KB).
    pub metadata_cache_bytes: usize,
    /// L1/L2/L3 hit latencies in cycles (defaults 2/20/30).
    pub cache_latencies: [Cycle; 3],
    /// BMT shape (default 8-ary, 9 levels — the paper's stated
    /// update-path length for 8 GB).
    pub bmt: BmtGeometry,
    /// How many of the *deepest* tree levels (the leaf level included)
    /// [`UpdateScheme::TriadNvm`] persists strictly; everything above
    /// is relaxed into the metadata cache. Default 3. Must be at least
    /// 1 and leave at least one relaxed level (`< bmt.levels()`).
    /// Ignored by every other scheme.
    pub triad_persisted_levels: u32,
    /// NVM device parameters (Table III).
    pub nvm: NvmConfig,
    /// Master key for the functional crypto.
    pub key: SipKey,
    /// Keep full per-persist records for crash-recovery analysis
    /// (memory-heavy; enable for tests, disable for long sweeps).
    pub record_persists: bool,
    /// Invariant sanitizer mode (default: on). The shadow verifier
    /// checks Invariants 1 and 2 plus WAW safety on every persist
    /// event; it observes timing without ever changing it, so turning
    /// it off alters only wall-clock cost, never results.
    pub sanitizer: SanitizerMode,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            scheme: UpdateScheme::SecureWb,
            scope: ProtectionScope::NonStack,
            mac_latency: Cycle::new(40),
            ideal_metadata: false,
            epoch_size: 32,
            wpq_entries: 32,
            ptt_entries: 64,
            ett_entries: 2,
            llc_bytes: 4 << 20,
            metadata_cache_bytes: 128 << 10,
            cache_latencies: [Cycle::new(2), Cycle::new(20), Cycle::new(30)],
            bmt: BmtGeometry::new(8, 9),
            triad_persisted_levels: 3,
            nvm: NvmConfig::paper_default(),
            key: SipKey::new(0x504c505f4b455930, 0x504c505f4b455931),
            record_persists: false,
            sanitizer: SanitizerMode::default(),
        }
    }
}

impl SystemConfig {
    /// A configuration for `scheme` with all other knobs at paper
    /// defaults.
    pub fn for_scheme(scheme: UpdateScheme) -> Self {
        SystemConfig {
            scheme,
            ..SystemConfig::default()
        }
    }

    /// Validates cross-field constraints, including the embedded NVM
    /// device configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a typed
    /// [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.epoch_size == 0 {
            return Err(ConfigError::EpochSizeZero);
        }
        if self.wpq_entries == 0 {
            return Err(ConfigError::EmptyTable { table: "WPQ" });
        }
        if self.ptt_entries == 0 {
            return Err(ConfigError::EmptyTable { table: "PTT" });
        }
        if self.ett_entries == 0 {
            return Err(ConfigError::EmptyTable { table: "ETT" });
        }
        if self.scheme == UpdateScheme::TriadNvm
            && (self.triad_persisted_levels == 0
                || self.triad_persisted_levels >= self.bmt.levels())
        {
            return Err(ConfigError::TriadLevels {
                persisted: self.triad_persisted_levels,
                levels: self.bmt.levels(),
            });
        }
        self.nvm.validate()?;
        Ok(())
    }

    /// The shallowest BMT level `triad_nvm` persists strictly (level 1
    /// is the root, `bmt.levels()` the leaves): levels `floor..=leaf`
    /// are durable per persist, levels `1..floor` are relaxed.
    pub fn triad_floor(&self) -> u32 {
        self.bmt.levels().saturating_sub(self.triad_persisted_levels) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table3() {
        let c = SystemConfig::default();
        assert_eq!(c.mac_latency, Cycle::new(40));
        assert_eq!(c.epoch_size, 32);
        assert_eq!(c.wpq_entries, 32);
        assert_eq!(c.ptt_entries, 64);
        assert_eq!(c.ett_entries, 2);
        assert_eq!(c.llc_bytes, 4 << 20);
        assert_eq!(c.metadata_cache_bytes, 128 << 10);
        assert_eq!(c.bmt.levels(), 9);
        assert_eq!(c.sanitizer, SanitizerMode::Check, "sanitizer defaults on");
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scheme_names_match_table4() {
        let names: Vec<_> = UpdateScheme::all().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["secure_WB", "unordered", "sp", "pipeline", "o3", "coalescing"]
        );
    }

    #[test]
    fn scheme_classification() {
        use UpdateScheme::*;
        assert!(O3.is_epoch_based() && Coalescing.is_epoch_based());
        assert!(!Sp.is_epoch_based());
        assert!(Sp.is_store_persisting() && Pipeline.is_store_persisting());
        assert!(Unordered.is_store_persisting());
        assert!(!SecureWb.is_store_persisting());
        assert!(TriadNvm.is_store_persisting() && Phoenix.is_store_persisting());
        assert!(!TriadNvm.is_epoch_based() && !Phoenix.is_epoch_based());
        assert_eq!(Coalescing.to_string(), "coalescing");
        assert_eq!(TriadNvm.to_string(), "triad_nvm");
        assert_eq!(Phoenix.to_string(), "phoenix");
        assert_eq!(UpdateScheme::parse("triad_nvm"), Some(TriadNvm));
        assert_eq!(UpdateScheme::parse("phoenix"), Some(Phoenix));
    }

    #[test]
    fn scheme_families_partition_consistently() {
        // persisting = strict ++ epoch, in Table IV order; all = the
        // baseline plus persisting; correct = persisting minus the
        // unordered strawman.
        let persisting: Vec<_> = UpdateScheme::strict()
            .into_iter()
            .chain(UpdateScheme::epoch())
            .collect();
        assert_eq!(persisting, UpdateScheme::persisting().to_vec());
        let all: Vec<_> = std::iter::once(UpdateScheme::SecureWb)
            .chain(UpdateScheme::persisting())
            .collect();
        assert_eq!(all, UpdateScheme::all().to_vec());
        // correct = (persisting minus the unordered strawman) plus the
        // zoo's fully-persistent phoenix; triad_nvm stays out — its
        // relaxed levels admit (detected) loss above the floor.
        let correct: Vec<_> = UpdateScheme::persisting()
            .into_iter()
            .filter(|s| *s != UpdateScheme::Unordered)
            .chain(std::iter::once(UpdateScheme::Phoenix))
            .collect();
        assert_eq!(correct, UpdateScheme::correct().to_vec());
        // all_extended = all ++ [sp_ctree] ++ zoo.
        let extended: Vec<_> = UpdateScheme::all()
            .into_iter()
            .chain(std::iter::once(UpdateScheme::SpCounterTree))
            .chain(UpdateScheme::zoo())
            .collect();
        assert_eq!(extended, UpdateScheme::all_extended().to_vec());
        assert!(!UpdateScheme::correct().contains(&UpdateScheme::TriadNvm));
    }

    #[test]
    fn triad_floor_splits_the_tree() {
        let mut c = SystemConfig::for_scheme(UpdateScheme::TriadNvm);
        assert!(c.validate().is_ok());
        // Default 9-level tree, 3 persisted levels: floor at level 7,
        // so levels 7..=9 are durable and 1..=6 relaxed.
        assert_eq!(c.triad_floor(), 7);
        c.triad_persisted_levels = 0;
        assert!(matches!(c.validate(), Err(ConfigError::TriadLevels { .. })));
        c.triad_persisted_levels = 9;
        assert!(matches!(c.validate(), Err(ConfigError::TriadLevels { .. })));
        // Other schemes ignore the knob entirely.
        let c = SystemConfig {
            triad_persisted_levels: 0,
            ..SystemConfig::for_scheme(UpdateScheme::Sp)
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_degenerate_configs() {
        let c = SystemConfig {
            epoch_size: 0,
            ..SystemConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::EpochSizeZero));
        let c = SystemConfig {
            wpq_entries: 0,
            ..SystemConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::EmptyTable { table: "WPQ" }));
        let c = SystemConfig {
            ett_entries: 0,
            ..SystemConfig::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::EmptyTable { table: "ETT" }));
    }

    #[test]
    fn validation_covers_the_nvm_device() {
        let mut c = SystemConfig::default();
        c.nvm.banks = 0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::Nvm(plp_nvm::NvmError::ZeroBanks))
        ));
    }
}
