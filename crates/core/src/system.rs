//! The full-system simulator: core model, cache hierarchy, security
//! engine, WPQ, NVM and the functional security state, driven by a
//! workload trace.
//!
//! The simulator is split into an immutable [`SimSetup`] (configuration
//! plus optional workload binding) and a per-run [`Simulation`] whose
//! [`Simulation::run`] consumes it. A setup can mint any number of
//! independent simulations — each starts from pristine caches, tree and
//! statistics, and is `Send`, so independent runs can execute on worker
//! threads.

use std::collections::BTreeSet;

use plp_bmt::{BonsaiTree, NodeLabel};
use plp_cache::{Hierarchy, HitLevel, WriteMode};
use plp_crypto::{CounterBlock, CtrEngine, DataBlock, MacEngine, MacTag};
use plp_events::addr::BlockAddr;
use plp_events::Cycle;
use plp_nvm::{NvmDevice, NvmError};
use plp_trace::{Op, Trace, WorkloadProfile};

use crate::engine::{EngineCtx, EngineStats, UpdateEngine, UpdateRequest};
use crate::fastmap::FastMap;
use crate::meta::{counter_block_addr, mac_block_addr, MetadataCaches};
use crate::crash::DurableSink;
use crate::failpoint::{Failpoint, FailpointRegistry, FiredFailpoint};
use crate::recovery::{ObserverExpectation, PersistImage};
use crate::sanitizer::{NodeUpdateEvent, PersistEvent, Sanitizer, SanitizerSummary};
use crate::wpq::Wpq;
use crate::{
    EpochId, PersistId, PersistRecord, ProtectionScope, RunReport, SystemConfig, TupleTimes,
    UpdateScheme,
};

/// The immutable description of an experiment run: configuration, core
/// IPC and (optionally) the workload profile and trace seed. Validated
/// once at construction; every [`SimSetup::simulation`] call mints a
/// fresh, independent [`Simulation`].
///
/// # Example
///
/// ```
/// use plp_core::{SimSetup, SystemConfig, UpdateScheme};
/// use plp_trace::spec;
///
/// let profile = spec::benchmark("milc").unwrap();
/// let setup = SimSetup::for_profile(
///     SystemConfig::for_scheme(UpdateScheme::Pipeline),
///     &profile,
///     7,
/// )
/// .unwrap();
/// let report = setup.run_generated(50_000);
/// assert!(report.persists > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SimSetup {
    config: SystemConfig,
    base_ipc: f64,
    profile: Option<WorkloadProfile>,
    seed: u64,
}

impl SimSetup {
    /// Builds a setup with a 1.0-IPC core.
    ///
    /// # Errors
    ///
    /// Returns the first constraint the configuration violates.
    pub fn new(config: SystemConfig) -> Result<Self, crate::ConfigError> {
        Self::with_base_ipc(config, 1.0)
    }

    /// Builds a setup whose core retires gap instructions at
    /// `base_ipc`.
    ///
    /// # Errors
    ///
    /// Returns the first constraint the configuration violates, or
    /// [`crate::ConfigError::NonPositiveBaseIpc`] for a degenerate core
    /// model.
    pub fn with_base_ipc(config: SystemConfig, base_ipc: f64) -> Result<Self, crate::ConfigError> {
        config.validate()?;
        if !base_ipc.is_finite() || base_ipc <= 0.0 {
            return Err(crate::ConfigError::NonPositiveBaseIpc { base_ipc });
        }
        Ok(SimSetup {
            config,
            base_ipc,
            profile: None,
            seed: 0,
        })
    }

    /// Binds the setup to a workload: the profile's calibrated baseline
    /// IPC drives the core model and `seed` fixes trace generation, so
    /// the setup alone determines a run via
    /// [`SimSetup::run_generated`].
    ///
    /// # Errors
    ///
    /// Returns the first constraint the configuration violates.
    pub fn for_profile(
        config: SystemConfig,
        profile: &WorkloadProfile,
        seed: u64,
    ) -> Result<Self, crate::ConfigError> {
        let mut setup = Self::with_base_ipc(config, profile.base_ipc)?;
        setup.profile = Some(profile.clone());
        setup.seed = seed;
        Ok(setup)
    }

    /// The configuration every simulation of this setup uses.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The core model's baseline IPC.
    pub fn base_ipc(&self) -> f64 {
        self.base_ipc
    }

    /// The bound workload profile, if any.
    pub fn profile(&self) -> Option<&WorkloadProfile> {
        self.profile.as_ref()
    }

    /// The trace-generation seed ([`SimSetup::for_profile`] binds it).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the bound workload's trace for roughly `instructions`
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if the setup was not built with
    /// [`SimSetup::for_profile`].
    pub fn generate_trace(&self, instructions: u64) -> Trace {
        let profile = self
            .profile
            .as_ref()
            // lint: allow(no-panic-lib) documented panic contract for profile-less setups
            .expect("SimSetup::generate_trace needs a profile-bound setup");
        plp_trace::TraceGenerator::new(profile.clone(), self.seed).generate(instructions)
    }

    /// Mints a fresh simulation: pristine caches, tree, WPQ and
    /// statistics.
    pub fn simulation(&self) -> Simulation {
        let config = self.config.clone();
        let engine = crate::engine::for_config(&config);
        let sanitizer = if config.sanitizer.is_on() {
            Some(Sanitizer::new(config.scheme, config.bmt))
        } else {
            None
        };
        Simulation {
            sanitizer,
            node_tap: Vec::new(),
            walk_scratch: Vec::with_capacity(config.bmt.levels_usize()),
            reencrypt_scratch: Vec::new(),
            flush_scratch: Vec::new(),
            hierarchy: Hierarchy::paper_default(config.llc_bytes),
            meta: MetadataCaches::new(config.metadata_cache_bytes, config.ideal_metadata),
            engine,
            engine_stats: EngineStats::default(),
            nvm: NvmDevice::new(config.nvm),
            wpq: Wpq::new(config.wpq_entries),
            ctr: CtrEngine::new(config.key),
            mac: MacEngine::new(config.key),
            tree: BonsaiTree::new(config.bmt, config.key),
            counters: FastMap::default(),
            epoch: EpochId(0),
            epoch_stores: 0,
            epoch_set: BTreeSet::new(),
            epoch_record_start: 0,
            persists: 0,
            writebacks: 0,
            epochs: 0,
            page_overflows: 0,
            overflow_blocks: 0,
            plaintexts: FastMap::default(),
            store_seq: 0,
            last_completion: Cycle::ZERO,
            last_ordered_release: Cycle::ZERO,
            records: Vec::new(),
            failpoints: None,
            durable: None,
            seal_log: None,
            base_ipc: self.base_ipc,
            config,
        }
    }

    /// Runs a fresh simulation over `trace`.
    pub fn run(&self, trace: &Trace) -> RunReport {
        self.simulation().run(trace)
    }

    /// Generates the bound workload's trace and runs it — the whole
    /// experiment as a pure function of the setup.
    ///
    /// # Panics
    ///
    /// Panics if the setup was not built with
    /// [`SimSetup::for_profile`].
    pub fn run_generated(&self, instructions: u64) -> RunReport {
        self.run(&self.generate_trace(instructions))
    }
}

/// One run's worth of simulated state.
///
/// Minted by [`SimSetup::simulation`] and *consumed* by
/// [`Simulation::run`]: state can never leak between runs, and calling
/// `run` twice on the same simulation is a compile error. The simulator
/// is deterministic — identical configuration and trace produce
/// identical reports.
///
/// # Example
///
/// ```
/// use plp_core::{SimSetup, SystemConfig, UpdateScheme};
/// use plp_trace::{spec, TraceGenerator};
///
/// let profile = spec::benchmark("milc").unwrap();
/// let trace = TraceGenerator::new(profile.clone(), 7).generate(50_000);
/// let setup = SimSetup::new(SystemConfig::for_scheme(UpdateScheme::Pipeline)).unwrap();
/// let report = setup.simulation().run(&trace);
/// assert!(report.persists > 0);
/// ```
#[derive(Debug)]
pub struct Simulation {
    config: SystemConfig,
    base_ipc: f64,
    hierarchy: Hierarchy,
    meta: MetadataCaches,
    engine: Box<dyn UpdateEngine>,
    engine_stats: EngineStats,
    nvm: NvmDevice,
    wpq: Wpq,
    ctr: CtrEngine,
    mac: MacEngine,
    tree: BonsaiTree,
    counters: FastMap<u64, CounterBlock>,
    // Epoch persistency state.
    epoch: EpochId,
    epoch_stores: usize,
    epoch_set: BTreeSet<BlockAddr>,
    epoch_record_start: usize,
    // Counters.
    persists: u64,
    writebacks: u64,
    epochs: u64,
    /// Minor-counter overflows (whole-page re-encryptions).
    page_overflows: u64,
    /// Blocks re-encrypted by page overflows.
    overflow_blocks: u64,
    /// Architectural last plaintext per persisted block (needed to
    /// re-encrypt a page when its minor counters overflow).
    plaintexts: FastMap<BlockAddr, DataBlock>,
    store_seq: u64,
    last_completion: Cycle,
    /// Completion of the previous WPQ entry: 2SP releases entries in
    /// FIFO order (§V-A's head pointer), so completions never reorder
    /// under strict persistency.
    last_ordered_release: Cycle,
    records: Vec<PersistRecord>,
    /// The shadow verifier, when [`SystemConfig::sanitizer`] is on.
    sanitizer: Option<Sanitizer>,
    /// Scratch buffer the engine tap fills per engine call; drained
    /// into the sanitizer and reused to avoid per-persist allocation.
    node_tap: Vec<NodeUpdateEvent>,
    /// Label scratch lent to the engine via [`EngineCtx::walk`].
    walk_scratch: Vec<NodeLabel>,
    /// Reusable page-overflow re-encryption work list.
    reencrypt_scratch: Vec<(BlockAddr, DataBlock, plp_crypto::CounterValue)>,
    /// Reusable epoch-seal flush list (the epoch set snapshot).
    flush_scratch: Vec<BlockAddr>,
    /// The named-failpoint registry, when the crash harness armed one.
    failpoints: Option<FailpointRegistry>,
    /// The file-backed durable sink, when a crash-harness child
    /// attached one: every persisted tuple is mirrored write-through
    /// into a device image that survives this process being killed.
    durable: Option<DurableSink>,
    /// Seal-event log for the sharded coordinator (`None` — the
    /// unsharded default — logs nothing and costs nothing).
    seal_log: Option<Vec<SealEvent>>,
}

/// One sealed epoch, as observed by the sharded coordinator: which
/// epoch closed and when its root became durable (engines without a
/// seal completion report `None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SealEvent {
    pub(crate) epoch: EpochId,
    pub(crate) completion: Option<Cycle>,
}

/// What one dispatched store did to its shard: the updated core clock
/// (stalls folded in) and, for store-persisting schemes, the persist's
/// completion time — the signal the coordinator's per-stream order
/// check consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct StoreOutcome {
    pub(crate) clock: f64,
    pub(crate) completion: Option<Cycle>,
}

/// A consumed simulation, returned by [`Simulation::run_with_state`]:
/// read-only access to the post-run architectural state, with no way
/// to run it again.
#[derive(Debug)]
pub struct FinishedSim {
    sim: Simulation,
}

impl FinishedSim {
    /// The configuration the run used.
    pub fn config(&self) -> &SystemConfig {
        &self.sim.config
    }

    /// The architectural (pre-crash) BMT root — what the on-chip
    /// register holds after all issued updates.
    pub fn architectural_root(&self) -> plp_bmt::NodeValue {
        self.sim.tree.root()
    }

    /// Where the armed failpoint fired, if a registry was armed (in
    /// observe mode a fired run still completes — this is how the
    /// golden model and the determinism tests learn the kill site).
    pub fn fired_failpoint(&self) -> Option<FiredFailpoint> {
        self.sim.failpoints.as_ref().and_then(|f| f.fired())
    }

    /// Total visits the armed registry counted at `point`.
    pub fn failpoint_hits(&self, point: Failpoint) -> u64 {
        self.sim
            .failpoints
            .as_ref()
            .map_or(0, |f| f.hit_count(point))
    }

    /// The first I/O error the durable sink swallowed, if a sink was
    /// attached and errored. Sink errors never disturb the simulation;
    /// callers that care (the crash-harness child) check here.
    pub fn durable_error(&self) -> Option<NvmError> {
        self.sim.durable.as_ref().and_then(|s| s.error())
    }
}

impl Simulation {
    /// The configuration this simulation was built with.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Arms the named-failpoint registry for this run. In observe mode
    /// the run completes and [`FinishedSim::fired_failpoint`] reports
    /// where the plan fired; in park mode the run stops dead at the
    /// armed `(failpoint, hit)`, awaiting SIGKILL from the harness.
    pub fn arm_failpoints(&mut self, registry: FailpointRegistry) {
        self.failpoints = Some(registry);
    }

    /// Attaches a file-backed durable sink: from now on every
    /// persisted tuple is mirrored write-through into the sink's
    /// device image, so killing this process leaves a readable image
    /// of exactly the persisted prefix.
    pub fn attach_durable_sink(&mut self, sink: DurableSink) {
        self.durable = Some(sink);
    }

    /// Visits failpoint `point` if a registry is armed. Hit counts
    /// advance identically whether or not a durable sink is attached,
    /// so observed hit indices are valid kill addresses.
    fn fp_hit(&mut self, point: Failpoint) {
        if let Some(fp) = self.failpoints.as_mut() {
            fp.hit(point);
        }
    }

    fn effective_mac(&self) -> Cycle {
        if self.config.ideal_metadata {
            Cycle::ZERO
        } else {
            self.config.mac_latency
        }
    }

    fn is_persisting_store(&self, stack: bool) -> bool {
        match self.config.scope {
            ProtectionScope::Full => true,
            ProtectionScope::NonStack => !stack,
        }
    }

    /// Split-borrows the engine away from the scheduling context it
    /// needs — the single point where any engine plugs into the persist
    /// path.
    fn with_engine<R>(&mut self, f: impl FnOnce(&mut dyn UpdateEngine, &mut EngineCtx<'_>) -> R) -> R {
        let mac_latency = if self.config.ideal_metadata {
            Cycle::ZERO
        } else {
            self.config.mac_latency
        };
        let tap = match &self.sanitizer {
            Some(s) if s.wants_node_events() => Some(&mut self.node_tap),
            _ => None,
        };
        let mut ctx = EngineCtx {
            geometry: self.config.bmt,
            mac_latency,
            meta: &mut self.meta,
            nvm: &mut self.nvm,
            stats: &mut self.engine_stats,
            tap,
            walk: &mut self.walk_scratch,
            failpoints: self.failpoints.as_mut(),
        };
        f(self.engine.as_mut(), &mut ctx)
    }

    /// Replaces the scheme's engine with `engine` — the mutation-test
    /// hook. The sanitizer (and everything else) is oblivious to the
    /// swap, which is the point: a seeded ordering bug must be caught
    /// from observed events alone. The replacement must target the same
    /// tree depth as the configuration.
    pub fn override_engine(&mut self, engine: Box<dyn UpdateEngine>) {
        self.engine = engine;
    }

    /// The persist path: the full security transformation + BMT update
    /// for one block, returning `(admission_time, completion_time)`.
    /// Every durable block — write-through stores, epoch flushes and
    /// background evictions alike — goes through this one routine;
    /// `ordered` marks persists the crash-recovery observer may rely on
    /// (vs background eviction write-backs).
    fn persist_block(&mut self, addr: BlockAddr, now: Cycle, ordered: bool) -> (Cycle, Cycle) {
        let eff_mac = self.effective_mac();
        let page = addr.page().index();

        // Step 1 of 2SP: allocate a WPQ entry (core stalls if full).
        let admit = self.wpq.admit(now);
        if let Some(fp) = self.failpoints.as_mut() {
            fp.begin_persist();
        }

        // Gather the tuple. The BMT walk depends only on the counter;
        // the 64-byte MAC block (which the new tag merges into) gathers
        // in parallel and joins at completion, so a MAC-cache miss
        // delays its own persist but never the root-ordering chain.
        let mut counter_ready = admit;
        if !self.meta.access_counter(page, true) {
            let fetched = self.nvm.read(admit, counter_block_addr(page));
            counter_ready = counter_ready.max(fetched + eff_mac); // verify fetched counters
        }
        let mut mac_block_ready = admit;
        if !self.meta.access_mac(addr, true) {
            mac_block_ready = mac_block_ready.max(self.nvm.read(admit, mac_block_addr(addr)));
        }
        // The data block's stateful MAC computes on its own unit in
        // parallel with the BMT walk (both need only the counter);
        // it joins the tuple at completion.
        let data_mac_done = counter_ready + eff_mac;

        // Functional transformation.
        self.store_seq += 1;
        let plaintext = DataBlock::from_u64(self.store_seq);
        self.plaintexts.insert(addr, plaintext);
        let counter_block = self.counters.entry(page).or_default();
        let bump = counter_block.bump(addr.slot_in_page());
        let gamma = bump.value();
        let ciphertext = self.ctr.encrypt(plaintext, addr, gamma);
        let mac = self.mac.compute(&ciphertext, addr, gamma);
        let counters_after = counter_block.clone();
        self.tree.update_leaf(page, &counters_after);

        // Minor-counter overflow: the major counter advanced and every
        // minor reset, so every previously persisted block of this
        // encryption page must be re-encrypted (and re-MACed) under its
        // new counter — the split-counter design's page cost (§II).
        // Overflows are rare, so the work list is a reused scratch
        // buffer, not a per-persist allocation.
        let mut reencrypt = std::mem::take(&mut self.reencrypt_scratch);
        reencrypt.clear();
        if bump.overflowed() {
            self.page_overflows += 1;
            let page_addr = addr.page();
            for slot in 0..plp_events::addr::BLOCKS_PER_PAGE {
                let other = page_addr.block(slot);
                if other == addr {
                    continue;
                }
                if let Some(&pt) = self.plaintexts.get(&other) {
                    reencrypt.push((other, pt, counters_after.value(slot)));
                }
            }
        }

        // Schedule the BMT update path through whichever engine the
        // scheme plugged in.
        let leaf = self.config.bmt.leaf(page);
        self.fp_hit(Failpoint::PreRootSeal);
        let root_done = self.with_engine(|engine, ctx| {
            ctx.stats.persists += 1;
            engine.persist(
                UpdateRequest {
                    leaf,
                    now: counter_ready,
                },
                ctx,
            )
        });
        self.fp_hit(Failpoint::PostRootSeal);
        self.append_durable_tuple(addr, page, &ciphertext, &counters_after, mac);
        // Shadow-verify the walk the engine just scheduled (Invariant 2
        // per level, or the epoch/WAW contract), then recycle the tap.
        if let Some(san) = self.sanitizer.as_mut() {
            san.observe_walk(PersistId(self.store_seq), self.epoch, &self.node_tap);
            self.node_tap.clear();
        }

        // Step 2 of 2SP: tuple complete; release to NVMM. Under strict
        // persistency the WPQ deallocates entries head-first, so a
        // younger tuple can never become durable before an older one —
        // completions are forced monotonic (Invariant 2 for C/γ/M).
        let mut completion = root_done.max(mac_block_ready).max(data_mac_done);
        // A minor-counter overflow extends the tuple: the page
        // re-encryption must persist atomically with the counter, or a
        // crash between them leaves other blocks of the page encrypted
        // under the old major counter. The pipelined crypto units chew
        // through the page in roughly one extra MAC latency.
        if !reencrypt.is_empty() {
            completion += self.effective_mac();
        }
        if !self.config.scheme.is_epoch_based() && self.config.scheme != UpdateScheme::Unordered {
            completion = completion.max(self.last_ordered_release);
            self.last_ordered_release = completion;
        }
        // Under strict persistency the 2SP mechanism locks the entry
        // until the whole tuple (root included) completes. Under epoch
        // persistency — and in the unordered strawman — blocks "drain
        // to persistent memory as they come" (§IV-B1): the slot frees
        // once the tuple components are gathered, and cross-epoch
        // ordering is enforced by the ETT instead.
        let slot_free = if self.config.scheme.is_epoch_based()
            || self.config.scheme == UpdateScheme::Unordered
        {
            counter_ready.max(mac_block_ready).max(data_mac_done)
        } else {
            completion
        };
        self.wpq.complete_at(slot_free);
        let _ = self.nvm.write(slot_free, addr);
        self.last_completion = self.last_completion.max(completion);

        // Page-overflow maintenance: re-encrypt the rest of the page
        // under the new major counter; each block is a posted NVM write
        // that persists atomically with this tuple (completion already
        // includes the re-encryption pass).
        if !reencrypt.is_empty() {
            let maintenance_done = completion;
            for (other, pt, new_gamma) in reencrypt.drain(..) {
                let new_cipher = self.ctr.encrypt(pt, other, new_gamma);
                let new_mac = self.mac.compute(&new_cipher, other, new_gamma);
                let _ = self.nvm.write(maintenance_done, other);
                self.overflow_blocks += 1;
                // Mirror the re-encryption into the durable image; it
                // persists atomically with its carrier tuple, so there
                // is no failpoint between the two appends.
                if let Some(sink) = self.durable.as_mut() {
                    sink.overflow(u64::MAX - self.overflow_blocks, other, &new_cipher, new_mac);
                }
                if self.config.record_persists {
                    self.records.push(PersistRecord {
                        id: PersistId(u64::MAX - self.overflow_blocks),
                        epoch: self.epoch,
                        addr: other,
                        plaintext: pt,
                        ciphertext: new_cipher,
                        counters_after: counters_after.clone(),
                        mac: new_mac,
                        issued_at: now,
                        times: TupleTimes::atomic(maintenance_done),
                    });
                }
            }
            self.last_completion = self.last_completion.max(maintenance_done);
        }
        self.reencrypt_scratch = reencrypt;

        if ordered {
            self.persists += 1;
        } else {
            self.writebacks += 1;
        }

        let times = match self.config.scheme {
            // Write-through without root ordering: components drain
            // as they arrive; the root lands whenever this persist's
            // own walk finishes — Invariant 2 is not enforced.
            UpdateScheme::Unordered => TupleTimes {
                data: counter_ready,
                counter: counter_ready,
                mac: data_mac_done.max(mac_block_ready),
                root: root_done,
            },
            // Relaxed tree levels: the data/counter pair retires with
            // the strict slice, but the MAC and root trail it through
            // the lazy flush window — one MAC latency per relaxed
            // level. A crash inside that window strands a fresh
            // data/counter pair under a stale MAC: the *detected* loss
            // the crash harness pins for this scheme.
            UpdateScheme::TriadNvm => {
                let relaxed = u64::from(self.config.triad_floor().saturating_sub(1));
                let lag = Cycle::new(self.effective_mac().get() * relaxed);
                TupleTimes {
                    data: completion,
                    counter: completion,
                    mac: completion + lag,
                    root: completion + lag,
                }
            }
            // 2SP: the whole tuple is released atomically.
            // (Epoch records are re-stamped at the epoch seal.
            // `phoenix` is stricter still: the dual-copy commit is
            // inside `completion`, so the tuple stays atomic.)
            UpdateScheme::SecureWb
            | UpdateScheme::Sp
            | UpdateScheme::Pipeline
            | UpdateScheme::O3
            | UpdateScheme::Coalescing
            | UpdateScheme::SpCounterTree
            | UpdateScheme::Phoenix => TupleTimes::atomic(completion),
        };
        if let Some(san) = self.sanitizer.as_mut() {
            san.observe_persist(&PersistEvent {
                id: PersistId(self.store_seq),
                epoch: self.epoch,
                addr,
                ordered,
                times,
            });
        }
        if self.config.record_persists {
            self.records.push(PersistRecord {
                id: PersistId(self.store_seq),
                epoch: self.epoch,
                addr,
                plaintext,
                ciphertext,
                counters_after,
                mac,
                issued_at: now,
                times,
            });
        }
        (admit, completion)
    }

    /// Mirrors one persisted tuple into the durable image and visits
    /// the `mid-tuple` failpoint.
    ///
    /// Frame granularity is the persistency claim under test: tuple-
    /// atomic schemes append one frame — torn on purpose when the
    /// armed `mid-tuple` kill is about to land, so the reader discards
    /// it (an interrupted 2SP tuple leaves no partial state) — while
    /// the `unordered` baseline appends each component separately with
    /// the failpoint between them, leaving genuinely half-written
    /// tuples on disk. `triad_nvm` sits between the two: its strict
    /// slice makes the data/counter pair atomic (one `TAG_TRIAD`
    /// frame), but the MAC and root trail through the relaxed-level
    /// flush window — one `between-levels` stop per relaxed level — so
    /// a kill in that window durably strands the pair under a stale
    /// MAC.
    fn append_durable_tuple(
        &mut self,
        addr: BlockAddr,
        page: u64,
        ciphertext: &DataBlock,
        counters_after: &CounterBlock,
        mac: MacTag,
    ) {
        if self.durable.is_none() && self.failpoints.is_none() {
            return;
        }
        let id = self.store_seq;
        let root_after = self.tree.root();
        if self.config.scheme == UpdateScheme::Unordered {
            if let Some(sink) = self.durable.as_mut() {
                sink.data(id, addr, ciphertext);
            }
            self.fp_hit(Failpoint::MidTuple);
            if let Some(sink) = self.durable.as_mut() {
                sink.counter(id, page, counters_after);
            }
            self.fp_hit(Failpoint::MidTuple);
            if let Some(sink) = self.durable.as_mut() {
                sink.mac_tag(id, addr, mac);
            }
            self.fp_hit(Failpoint::MidTuple);
            if let Some(sink) = self.durable.as_mut() {
                sink.root(id, root_after);
            }
        } else if self.config.scheme == UpdateScheme::TriadNvm {
            // The strict slice: data and counter persist atomically
            // (a torn TAG_TRIAD frame vanishes on replay, exactly like
            // an interrupted 2SP tuple).
            let torn = self
                .failpoints
                .as_ref()
                .is_some_and(|fp| fp.would_fire(Failpoint::MidTuple));
            if let Some(sink) = self.durable.as_mut() {
                let frame = crate::crash::TriadFrame {
                    id,
                    addr,
                    page,
                    cipher: ciphertext,
                    counters: counters_after,
                };
                if torn {
                    sink.triad_torn(&frame);
                } else {
                    sink.triad(&frame);
                }
            }
            self.fp_hit(Failpoint::MidTuple);
            // The lazy flush window above the persisted floor: one
            // between-levels stop per relaxed level. A kill landing
            // here leaves the new pair durable while the MAC and root
            // are not — the detected loss the harness pins.
            for _ in 1..self.config.triad_floor() {
                self.fp_hit(Failpoint::BetweenLevels);
            }
            if let Some(sink) = self.durable.as_mut() {
                sink.mac_tag(id, addr, mac);
                sink.root(id, root_after);
            }
        } else {
            let torn = self
                .failpoints
                .as_ref()
                .is_some_and(|fp| fp.would_fire(Failpoint::MidTuple));
            if let Some(sink) = self.durable.as_mut() {
                let frame = crate::crash::TupleFrame {
                    id,
                    addr,
                    page,
                    cipher: ciphertext,
                    counters: counters_after,
                    mac,
                    root: root_after,
                };
                if torn {
                    sink.tuple_torn(&frame);
                } else {
                    sink.tuple(&frame);
                }
            }
            self.fp_hit(Failpoint::MidTuple);
        }
    }

    /// Seals the current epoch: flushes its write set as persists,
    /// rotates the ETT and re-stamps the epoch's records to its
    /// completion time. Returns the latest core-visible admission
    /// stall.
    fn seal_epoch(&mut self, now: Cycle) -> Cycle {
        // Snapshot the epoch set into the reused flush list (the set's
        // order is already deterministic); `persist_block` below needs
        // `&mut self`, hence the take/restore dance.
        let mut addrs = std::mem::take(&mut self.flush_scratch);
        addrs.clear();
        addrs.extend(self.epoch_set.iter().copied());
        self.epoch_set.clear();
        let mut stall = now;
        for &addr in &addrs {
            let (admit, _) = self.persist_block(addr, now, true);
            stall = stall.max(admit);
            self.hierarchy.mark_clean(addr);
            self.fp_hit(Failpoint::MidEpochFlush);
        }
        self.flush_scratch = addrs;
        let sealed = self.with_engine(|engine, ctx| engine.seal_epoch(ctx));
        if let Some(san) = self.sanitizer.as_mut() {
            // Seal-time walks (a coalescing carrier's suffix commit)
            // belong to the sealing epoch but to no single persist.
            san.observe_epoch_tail(self.epoch, &self.node_tap);
            self.node_tap.clear();
            if let Some(completion) = sealed {
                san.observe_seal(self.epoch, completion);
            }
        }
        if let Some(completion) = sealed {
            self.last_completion = self.last_completion.max(completion);
            if self.config.record_persists {
                for r in &mut self.records[self.epoch_record_start..] {
                    r.times = TupleTimes::atomic(completion);
                }
            }
        }
        // The seal itself is durable state: mirror it, then visit the
        // post-seal failpoint (a kill there must find the seal frame
        // already on disk).
        if self.durable.is_some() || self.failpoints.is_some() {
            let sealed_root = self.tree.root();
            let sealed_epoch = self.epoch.0;
            if let Some(sink) = self.durable.as_mut() {
                sink.seal(sealed_epoch, sealed_root);
            }
            self.fp_hit(Failpoint::PostEpochSeal);
        }
        if let Some(log) = self.seal_log.as_mut() {
            log.push(SealEvent {
                epoch: self.epoch,
                completion: sealed,
            });
        }
        self.epochs += 1;
        self.epoch = EpochId(self.epoch.0 + 1);
        self.epoch_stores = 0;
        self.epoch_record_start = self.records.len();
        stall
    }

    /// Turns on seal-event logging (the sharded coordinator's epoch
    /// feed; see [`SealEvent`]).
    pub(crate) fn enable_seal_log(&mut self) {
        self.seal_log = Some(Vec::new());
    }

    /// Drains logged seal events into `out` (no-op when logging is
    /// off).
    pub(crate) fn drain_seals_into(&mut self, out: &mut Vec<SealEvent>) {
        if let Some(log) = self.seal_log.as_mut() {
            out.append(log);
        }
    }

    /// The latest persist completion seen so far — the shard's durable
    /// frontier.
    pub(crate) fn last_completion_cycle(&self) -> Cycle {
        self.last_completion
    }

    /// An LLC dirty eviction: needs the full security transformation
    /// but carries no crash-recovery ordering expectation.
    fn eviction_writeback(&mut self, addr: BlockAddr, now: Cycle) {
        let _ = self.persist_block(addr, now, false);
    }

    /// One store's worth of persist-path work (stores stall the core
    /// only on WPQ back-pressure and epoch seals). This is the
    /// store-dispatch step shared by [`Simulation::run_with_state`] and
    /// the sharded coordinator.
    pub(crate) fn step_store(
        &mut self,
        addr: BlockAddr,
        stack: bool,
        now: Cycle,
        clock: f64,
    ) -> StoreOutcome {
        let mut clock = clock;
        let mut done = None;
        let persisting = self.is_persisting_store(stack);
        if persisting && self.config.scheme.is_store_persisting() {
            self.hierarchy.store(addr, WriteMode::WriteThrough);
            let (admit, completion) = self.persist_block(addr, now, true);
            clock = clock.max(admit.get() as f64);
            done = Some(completion);
        } else if persisting && self.config.scheme.is_epoch_based() {
            let out = self.hierarchy.store(addr, WriteMode::WriteBack);
            self.epoch_set.insert(addr);
            for wb in out.memory_writebacks {
                if self.epoch_set.remove(&wb) {
                    // A block of the open epoch leaves the LLC early:
                    // it persists now, within the epoch.
                    let (admit, _) = self.persist_block(wb, now, true);
                    clock = clock.max(admit.get() as f64);
                } else {
                    self.eviction_writeback(wb, now);
                }
            }
            self.epoch_stores += 1;
            if self.epoch_stores >= self.config.epoch_size {
                let stall = self.seal_epoch(Cycle::new(clock as u64));
                clock = clock.max(stall.get() as f64);
            }
        } else {
            let out = self.hierarchy.store(addr, WriteMode::WriteBack);
            for wb in out.memory_writebacks {
                self.eviction_writeback(wb, now);
            }
        }
        StoreOutcome {
            clock,
            completion: done,
        }
    }

    /// One load's worth of cache/NVM traffic — the load-dispatch step
    /// shared by [`Simulation::run_with_state`] and the sharded
    /// coordinator.
    pub(crate) fn step_load(&mut self, addr: BlockAddr, now: Cycle) {
        let out = self.hierarchy.load(addr);
        if out.level == HitLevel::Memory {
            let _ = self.nvm.read(now, addr);
        }
        for wb in out.memory_writebacks {
            self.eviction_writeback(wb, now);
        }
    }

    /// Seals a partial final epoch if one is open; returns the updated
    /// core clock. The end-of-trace drain step shared by
    /// [`Simulation::run_with_state`] and the sharded coordinator.
    pub(crate) fn drain_epoch(&mut self, clock: f64) -> f64 {
        let mut clock = clock;
        if self.config.scheme.is_epoch_based()
            && (!self.epoch_set.is_empty() || self.epoch_stores > 0)
        {
            let stall = self.seal_epoch(Cycle::new(clock as u64));
            clock = clock.max(stall.get() as f64);
        }
        clock
    }

    /// Consumes the simulation into its report: waits out the engine
    /// drain, snapshots every statistic. `instructions` is the retired
    /// instruction count to attribute to this run (the whole trace for
    /// an unsharded run; the shard's routed share under the sharded
    /// coordinator).
    pub(crate) fn finish(mut self, instructions: u64, clock: f64) -> (RunReport, FinishedSim) {
        let total = Cycle::new(clock.ceil() as u64)
            .max(self.last_completion)
            .max(self.engine.drained_at());

        let caches = self.hierarchy.levels();
        let report = RunReport {
            total_cycles: total,
            instructions,
            persists: self.persists,
            writebacks: self.writebacks,
            epochs: self.epochs,
            engine: self.engine_stats,
            coalesced_saved_updates: self.engine.saved_updates(),
            page_overflows: self.page_overflows,
            overflow_blocks: self.overflow_blocks,
            wpq_stall_cycles: self.wpq.stall_cycles(),
            wpq_peak: self.wpq.peak_occupancy(),
            metadata: self.meta.stats(),
            data_caches: [caches[0].stats(), caches[1].stats(), caches[2].stats()],
            nvm: self.nvm.stats(),
            sanitizer: match self.sanitizer.take() {
                Some(san) => san.finish(),
                None => SanitizerSummary::off(),
            },
            records: std::mem::take(&mut self.records),
        };
        (report, FinishedSim { sim: self })
    }

    /// Runs the trace to completion, consuming the simulation, and
    /// reports.
    ///
    /// The core model retires every instruction — gaps and memory
    /// operations alike — at the calibrated baseline IPC, which (per
    /// the trace profiles, fitted to the paper's `secure_WB` runs)
    /// already folds in the benchmark's average cache and memory-stall
    /// behaviour. Loads and stores therefore contribute *traffic*
    /// (cache contents, evictions, NVM occupancy the persist path
    /// contends with) rather than per-access core stalls; the
    /// core-visible stalls are the persist-path ones the paper
    /// studies: WPQ back-pressure and epoch sealing.
    ///
    /// Consuming `self` makes run state single-use by construction:
    /// re-running a consumed simulation is a compile error, so caches,
    /// tree and statistics can never accumulate across runs. Mint a
    /// fresh [`Simulation`] from the [`SimSetup`] for the next run.
    pub fn run(self, trace: &Trace) -> RunReport {
        self.run_with_state(trace).0
    }

    /// Like [`Simulation::run`], but also returns the consumed
    /// simulation as a read-only [`FinishedSim`] for architectural
    /// inspection.
    pub fn run_with_state(mut self, trace: &Trace) -> (RunReport, FinishedSim) {
        let cpi = 1.0 / self.base_ipc;
        let mut clock: f64 = 0.0;

        for ev in trace {
            clock += (ev.gap_instructions as f64 + 1.0) * cpi;
            let now = Cycle::new(clock as u64);
            match ev.op {
                Op::Load { addr } => self.step_load(addr, now),
                Op::Store { addr, stack } => {
                    clock = self.step_store(addr, stack, now, clock).clock;
                }
            }
        }

        // Drain: seal a partial final epoch, wait for all persists.
        clock = self.drain_epoch(clock);
        self.finish(trace.total_instructions(), clock)
    }

    /// The architectural (pre-crash) BMT root — what the on-chip
    /// register holds before the run starts (see
    /// [`FinishedSim::architectural_root`] for the post-run value).
    pub fn architectural_root(&self) -> plp_bmt::NodeValue {
        self.tree.root()
    }
}

/// Runs `profile` under `config` for roughly `instructions`
/// instructions with a deterministic `seed`, wiring the profile's
/// baseline IPC into the core model.
///
/// # Example
///
/// ```
/// use plp_core::{run_benchmark, SystemConfig, UpdateScheme};
/// use plp_trace::spec;
///
/// let profile = spec::benchmark("astar").unwrap();
/// let report = run_benchmark(
///     &profile,
///     &SystemConfig::for_scheme(UpdateScheme::O3),
///     50_000,
///     1,
/// );
/// assert!(report.epochs > 0);
/// ```
///
/// # Panics
///
/// Panics if the configuration is invalid (see
/// [`SystemConfig::validate`]).
pub fn run_benchmark(
    profile: &WorkloadProfile,
    config: &SystemConfig,
    instructions: u64,
    seed: u64,
) -> RunReport {
    match SimSetup::for_profile(config.clone(), profile, seed) {
        Ok(setup) => setup.run_generated(instructions),
        // lint: allow(no-panic-lib) documented panic contract for invalid configurations
        Err(e) => panic!("invalid system configuration: {e}"),
    }
}

/// Runs `trace` under a prebuilt setup — [`run_benchmark`] for callers
/// that share one generated trace across many configurations.
pub fn run_trace(setup: &SimSetup, trace: &Trace) -> RunReport {
    setup.run(trace)
}

/// Runs a trace and returns the crash-analysis artefacts: the report,
/// the durable image and the observer expectation at time `t` (or at
/// the end of the run if `t` is `None`). Requires
/// [`SystemConfig::record_persists`].
///
/// # Panics
///
/// Panics if `config.record_persists` is false or the configuration is
/// invalid.
pub fn run_with_crash(
    config: &SystemConfig,
    base_ipc: f64,
    trace: &Trace,
    t: Option<Cycle>,
) -> (RunReport, PersistImage, ObserverExpectation) {
    assert!(
        config.record_persists,
        "crash analysis needs record_persists = true"
    );
    let setup = match SimSetup::with_base_ipc(config.clone(), base_ipc) {
        Ok(setup) => setup,
        // lint: allow(no-panic-lib) documented panic contract for invalid configurations
        Err(e) => panic!("invalid system configuration: {e}"),
    };
    let report = setup.run(trace);
    let crash_at = t.unwrap_or(Cycle::MAX);
    let image = PersistImage::at_time(&report.records, crash_at, config.bmt, config.key);
    let expected = ObserverExpectation::at_time(&report.records, crash_at);
    (report, image, expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecoveryChecker;
    use plp_trace::spec;

    fn small_trace(name: &str, n: u64) -> Trace {
        plp_trace::TraceGenerator::new(spec::benchmark(name).unwrap(), 99).generate(n)
    }

    fn run_scheme(scheme: UpdateScheme, n: u64) -> RunReport {
        let trace = small_trace("gcc", n);
        let setup = SimSetup::new(SystemConfig::for_scheme(scheme)).unwrap();
        setup.run(&trace)
    }

    #[test]
    fn all_schemes_run_to_completion() {
        for scheme in UpdateScheme::all() {
            let r = run_scheme(scheme, 20_000);
            assert!(r.total_cycles > Cycle::ZERO, "{scheme}: empty run");
            assert!(r.instructions >= 20_000);
        }
    }

    #[test]
    fn setup_is_reusable_and_runs_are_independent() {
        let trace = small_trace("gcc", 30_000);
        let setup = SimSetup::new(SystemConfig::for_scheme(UpdateScheme::Coalescing)).unwrap();
        let a = setup.run(&trace);
        // A second run from the same setup starts from pristine state:
        // identical report, no accumulation.
        let b = setup.simulation().run(&trace);
        assert_eq!(a, b);
    }

    #[test]
    fn performance_ordering_matches_fig8_and_fig10() {
        // sp >> pipeline >> o3 ~ coalescing, all >= secure_WB.
        let n = 150_000;
        let base = run_scheme(UpdateScheme::SecureWb, n).total_cycles.get() as f64;
        let sp = run_scheme(UpdateScheme::Sp, n).total_cycles.get() as f64;
        let pipe = run_scheme(UpdateScheme::Pipeline, n).total_cycles.get() as f64;
        let o3 = run_scheme(UpdateScheme::O3, n).total_cycles.get() as f64;
        let co = run_scheme(UpdateScheme::Coalescing, n).total_cycles.get() as f64;
        assert!(sp > 2.0 * pipe, "sp {sp} should far exceed pipeline {pipe}");
        assert!(pipe > o3, "pipeline {pipe} should exceed o3 {o3}");
        assert!(o3 >= base * 0.9, "o3 {o3} implausibly below baseline {base}");
        // §VII: coalescing's runtime stays close to o3 (its benefit is
        // fewer node updates, not latency) — the LCA handoff makes the
        // older update wait for the younger one.
        assert!(co <= o3 * 1.15, "coalescing {co} should track o3 {o3}");
    }

    #[test]
    fn epoch_schemes_reduce_persists() {
        let n = 100_000;
        let sp = run_scheme(UpdateScheme::Sp, n);
        let o3 = run_scheme(UpdateScheme::O3, n);
        assert!(
            (o3.persists as f64) < 0.75 * sp.persists as f64,
            "epoch coalescing in cache should cut persists: o3={} sp={}",
            o3.persists,
            sp.persists
        );
        assert!(o3.epochs > 0);
    }

    #[test]
    fn coalescing_reduces_node_updates() {
        let n = 100_000;
        let o3 = run_scheme(UpdateScheme::O3, n);
        let co = run_scheme(UpdateScheme::Coalescing, n);
        let reduction = co.node_update_reduction_vs(&o3);
        assert!(
            reduction > 0.05,
            "coalescing reduced node updates by only {:.1}%",
            reduction * 100.0
        );
    }

    #[test]
    fn full_scope_persists_more_than_nonstack() {
        let trace = small_trace("astar", 60_000);
        let mut cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
        let nonstack = SimSetup::new(cfg.clone()).unwrap().run(&trace);
        cfg.scope = ProtectionScope::Full;
        let full = SimSetup::new(cfg).unwrap().run(&trace);
        assert!(full.persists > 2 * nonstack.persists);
        assert!(full.total_cycles > nonstack.total_cycles);
    }

    #[test]
    fn sp_crash_recovery_is_clean_at_any_point() {
        let mut cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
        cfg.record_persists = true;
        let trace = small_trace("milc", 8_000);
        let (report, image, expected) =
            run_with_crash(&cfg, 1.0, &trace, Some(Cycle::new(50_000)));
        assert!(!report.records.is_empty());
        let checker = RecoveryChecker::new(cfg.bmt, cfg.key);
        let rep = checker.check(&image, &expected);
        assert!(rep.is_clean(), "{rep}");
    }

    #[test]
    fn epoch_crash_recovery_is_clean_at_epoch_granularity() {
        let mut cfg = SystemConfig::for_scheme(UpdateScheme::Coalescing);
        cfg.record_persists = true;
        let trace = small_trace("gamess", 8_000);
        let (report, image, expected) =
            run_with_crash(&cfg, 1.0, &trace, Some(Cycle::new(20_000)));
        assert!(report.epochs > 0);
        let checker = RecoveryChecker::new(cfg.bmt, cfg.key);
        let rep = checker.check(&image, &expected);
        assert!(rep.is_clean(), "{rep}");
    }

    #[test]
    fn unordered_crash_can_fail_verification() {
        // The headline negative result: the unordered strawman leaves
        // some crash window where recovery fails integrity checks.
        let mut cfg = SystemConfig::for_scheme(UpdateScheme::Unordered);
        cfg.record_persists = true;
        let trace = small_trace("gcc", 10_000);
        let report = SimSetup::new(cfg.clone()).unwrap().run(&trace);
        let checker = RecoveryChecker::new(cfg.bmt, cfg.key);
        let mut any_failure = false;
        // Scan crash points between component persists.
        let mut times: Vec<Cycle> = report
            .records
            .iter()
            .flat_map(|r| [r.times.data, r.times.root])
            .collect();
        times.sort();
        times.dedup();
        for t in times.iter().step_by(7) {
            let image = PersistImage::at_time(&report.records, *t, cfg.bmt, cfg.key);
            let expected = ObserverExpectation::at_time(&report.records, *t);
            if !checker.check(&image, &expected).is_clean() {
                any_failure = true;
                break;
            }
        }
        assert!(
            any_failure,
            "unordered persists never produced a torn crash state"
        );
    }

    #[test]
    fn wpq_size_back_pressure() {
        let trace = small_trace("gcc", 60_000);
        let mut tiny = SystemConfig::for_scheme(UpdateScheme::Coalescing);
        tiny.wpq_entries = 4;
        let mut big = tiny.clone();
        big.wpq_entries = 64;
        let r_tiny = SimSetup::new(tiny).unwrap().run(&trace);
        let r_big = SimSetup::new(big).unwrap().run(&trace);
        assert!(r_tiny.wpq_stall_cycles >= r_big.wpq_stall_cycles);
        assert!(r_tiny.total_cycles >= r_big.total_cycles);
    }

    #[test]
    fn simulations_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Simulation>();
        assert_send::<SimSetup>();
    }

    #[test]
    fn deterministic_runs() {
        let a = run_scheme(UpdateScheme::Coalescing, 30_000);
        let b = run_scheme(UpdateScheme::Coalescing, 30_000);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.engine.node_updates, b.engine.node_updates);
    }
}
