//! The sharded multi-stream coordinator: N client streams over M
//! per-shard subtree engines with a cross-shard root-of-roots.
//!
//! The paper's PTT/ETT are per-memory-controller structures, so the
//! natural scaling axis is more controllers: partition the physical
//! address space across M *shards*, give each shard its own BMT,
//! engine, WPQ and metadata caches (a full [`Simulation`]), and stitch
//! the shard roots together with a *root-of-roots* tree. Client traffic
//! comes from N independent persist streams interleaved by a
//! deterministic arbiter.
//!
//! Three pieces live here:
//!
//! * [`ShardTopology`] — the `(streams, shards)` pair. The unit
//!   topology (1×1) routes through the classic unsharded path and is
//!   byte-identical to it, so every existing artefact, cache key and
//!   chaos gate carries over unchanged.
//! * [`ShardedSetup`] — owns one [`SimSetup`] template and mints M
//!   per-shard [`Simulation`]s per run. The arbiter replays each
//!   stream's trace against its own core clock (next event at
//!   `clock + (gap + 1) · CPI`), dispatches the earliest event first
//!   (ties break to the lowest stream id), routes it through
//!   [`ShardMap`] and writes stall feedback (WPQ back-pressure, epoch
//!   seals) back into that stream's clock only — exactly the unsharded
//!   core-clock rule, replicated per stream.
//! * The **root-of-roots epoch barrier**: when a shard seals epoch
//!   *k*, its shard root joins round *k* of the root-of-roots tree.
//!   A round's updates are folded only once *every* shard has sealed
//!   its *k*-th epoch, and each fold must land at or after the previous
//!   round's last fold — no shard's epoch *k+1* root update becomes
//!   durable before every shard has durably sealed *k*. A shadow
//!   [`BarrierModel`] inside the run recomputes the expected fold
//!   times independently; any root-of-roots update that lands earlier
//!   than the barrier permits (or never lands) is reported as a
//!   [`ViolationKind::CrossShardRootOrder`]. Per-stream ack ordering is
//!   checked as [`ViolationKind::StreamOrder`].
//!
//! Deliberately broken coordinators ([`ShardMutation`]) prove the new
//! checks fire; correct runs stay clean for every scheme.

use std::collections::VecDeque;

use plp_events::addr::{BlockAddr, ShardMap};
use plp_events::Cycle;
use plp_trace::{multi, Op, Trace};
use serde::{Deserialize, Serialize};

use crate::engine::level_slot;
use crate::sanitizer::{SanitizerMode, SanitizerSummary, Violation, ViolationKind, NO_FIELD};
use crate::system::SealEvent;
use crate::{EpochId, RunReport, SchemeContract, SimSetup, Simulation, UpdateScheme};

/// How a run is sharded: `streams` independent clients persisting into
/// `shards` memory controllers.
///
/// The unit topology (`1×1`) is the unsharded simulator, byte for
/// byte.
///
/// # Example
///
/// ```
/// use plp_core::ShardTopology;
///
/// assert!(ShardTopology::unit().is_unit());
/// let t = ShardTopology::new(4, 2);
/// assert_eq!(t.streams(), 4);
/// assert_eq!(t.shards(), 2);
/// assert!(!t.is_unit());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ShardTopology {
    streams: u32,
    shards: u32,
}

impl ShardTopology {
    /// One stream into one shard — the classic unsharded simulator.
    pub const fn unit() -> Self {
        ShardTopology {
            streams: 1,
            shards: 1,
        }
    }

    /// A topology of `streams` clients over `shards` controllers.
    ///
    /// # Panics
    ///
    /// Panics if either axis is zero.
    pub fn new(streams: u32, shards: u32) -> Self {
        assert!(streams >= 1, "topology needs at least one stream");
        assert!(shards >= 1, "topology needs at least one shard");
        ShardTopology { streams, shards }
    }

    /// Number of client streams.
    pub const fn streams(self) -> u32 {
        self.streams
    }

    /// Number of shards (memory controllers).
    pub const fn shards(self) -> u32 {
        self.shards
    }

    /// Whether this is the unsharded `1×1` topology.
    pub const fn is_unit(self) -> bool {
        self.streams == 1 && self.shards == 1
    }
}

impl Default for ShardTopology {
    fn default() -> Self {
        ShardTopology::unit()
    }
}

impl std::fmt::Display for ShardTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.streams, self.shards)
    }
}

/// A deliberately broken sharded coordinator, for mutation-testing the
/// cross-shard sanitizer rules (the [`crate::engine::MutantEngine`]
/// idea one layer up).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMutation {
    /// Shard roots never join the root-of-roots: every sealed epoch's
    /// expected fold goes missing. Expected verdict:
    /// `cross_shard_root_order`.
    SkipRootOfRoots,
    /// Root-of-roots folds ignore the cross-shard epoch barrier (each
    /// seal folds immediately at `seal + MAC`). Expected verdict:
    /// `cross_shard_root_order` on epoch-persistency schemes, whose
    /// shards drift apart in sealed-epoch count.
    SkipEpochBarrier,
    /// The interconnect delivers per-stream durability acks out of
    /// order (consecutive acks of a `(stream, shard)` pair swap).
    /// Expected verdict: `stream_order` on strict store-persisting
    /// schemes.
    ReorderAcks,
}

/// The deterministic root-of-roots timing model, shared by the live
/// coordinator and the shadow verifier.
///
/// Seals queue per shard; round *k* (every shard's *k*-th seal) folds
/// only when complete — or at end-of-run drain for shards that sealed
/// fewer epochs — and each fold lands at
/// `max(seal, barrier, own chain) + MAC`, where `barrier` is the
/// latest fold of the previous round across all shards.
#[derive(Debug)]
struct BarrierModel {
    mac: Cycle,
    shards: u32,
    barrier: Cycle,
    last: Vec<Cycle>,
    pending: Vec<VecDeque<(EpochId, Cycle)>>,
    frontier: Cycle,
}

impl BarrierModel {
    fn new(shards: u32, mac: Cycle) -> Self {
        BarrierModel {
            mac,
            shards,
            barrier: Cycle::ZERO,
            last: vec![Cycle::ZERO; level_slot(shards)],
            pending: vec![VecDeque::new(); level_slot(shards)],
            frontier: Cycle::ZERO,
        }
    }

    /// Queues shard `shard`'s next seal and folds every round that is
    /// now complete, appending `(shard, epoch, fold_time)` to `out` in
    /// fold order.
    fn push_seal(
        &mut self,
        shard: u32,
        epoch: EpochId,
        completion: Cycle,
        out: &mut Vec<(u32, EpochId, Cycle)>,
    ) {
        self.pending[level_slot(shard)].push_back((epoch, completion));
        while self.pending.iter().all(|q| !q.is_empty()) {
            self.fold_round(out);
        }
    }

    /// Folds one round: pops at most one pending seal per shard (shard
    /// order), advancing the barrier to the round's latest fold.
    fn fold_round(&mut self, out: &mut Vec<(u32, EpochId, Cycle)>) {
        let mut round_max = self.barrier;
        for shard in 0..self.shards {
            if let Some((epoch, completion)) = self.pending[level_slot(shard)].pop_front() {
                let done = completion.max(self.barrier).max(self.last[level_slot(shard)]) + self.mac;
                self.last[level_slot(shard)] = done;
                round_max = round_max.max(done);
                self.frontier = self.frontier.max(done);
                out.push((shard, epoch, done));
            }
        }
        self.barrier = round_max;
    }

    /// Folds every remaining (possibly partial) round — the shards
    /// that sealed fewer epochs stop gating the rest.
    fn drain(&mut self, out: &mut Vec<(u32, EpochId, Cycle)>) {
        while self.pending.iter().any(|q| !q.is_empty()) {
            self.fold_round(out);
        }
    }
}

/// The coordinator-level shadow verifier: recomputes the expected
/// root-of-roots schedule from observed seals and holds the live
/// coordinator (and the ack interconnect) to it.
#[derive(Debug)]
struct ShardObserver {
    enabled: bool,
    stream_check: bool,
    scheme: UpdateScheme,
    shards: u32,
    /// Last delivered ack per `(stream, shard)`.
    last_ack: Vec<Cycle>,
    /// The shadow barrier model, fed by observed seals.
    shadow: BarrierModel,
    /// Expected folds per shard, in round order.
    expected: Vec<VecDeque<(EpochId, Cycle)>>,
    /// Claimed folds per shard, in emission order.
    claimed: Vec<VecDeque<(EpochId, Cycle)>>,
    fold_scratch: Vec<(u32, EpochId, Cycle)>,
    violations: Vec<Violation>,
    dropped: u64,
}

/// Stored-violation cap (matches the per-run sanitizer's spirit:
/// details bounded, counts exact).
const OBSERVER_DETAIL_CAP: usize = 64;

impl ShardObserver {
    fn new(scheme: UpdateScheme, streams: u32, shards: u32, mac: Cycle, enabled: bool) -> Self {
        let keys = level_slot(streams) * level_slot(shards);
        ShardObserver {
            enabled,
            // Per-stream ack order is an Invariant-2 claim: only the
            // strict-walk (store-persisting) family makes it.
            stream_check: SchemeContract::for_scheme(scheme).strict_walk,
            scheme,
            shards,
            last_ack: vec![Cycle::ZERO; keys],
            shadow: BarrierModel::new(shards, mac),
            expected: vec![VecDeque::new(); level_slot(shards)],
            claimed: vec![VecDeque::new(); level_slot(shards)],
            fold_scratch: Vec::new(),
            violations: Vec::new(),
            dropped: 0,
        }
    }

    fn push_violation(&mut self, kind: ViolationKind, cycle: Cycle, epoch: EpochId, addr: u64) {
        if self.violations.len() < OBSERVER_DETAIL_CAP {
            self.violations.push(Violation {
                kind,
                scheme: self.scheme,
                cycle,
                epoch,
                persist: NO_FIELD,
                level: 0,
                node: NO_FIELD,
                addr,
            });
        } else {
            self.dropped += 1;
        }
    }

    /// One durability ack delivered for `(stream, shard)`: within a
    /// stream, a shard's ordered persists must complete in program
    /// order.
    fn observe_ack(&mut self, stream: u32, shard: u32, addr: BlockAddr, done: Cycle) {
        if !self.enabled || !self.stream_check {
            return;
        }
        let key = level_slot(stream) * level_slot(self.shards) + level_slot(shard);
        if done < self.last_ack[key] {
            self.push_violation(ViolationKind::StreamOrder, done, EpochId(0), addr.index());
        }
        self.last_ack[key] = self.last_ack[key].max(done);
    }

    /// One observed epoch seal: feed the shadow barrier and reconcile
    /// any rounds it can now fold.
    fn observe_seal(&mut self, shard: u32, epoch: EpochId, completion: Cycle) {
        if !self.enabled {
            return;
        }
        let mut folds = std::mem::take(&mut self.fold_scratch);
        folds.clear();
        self.shadow.push_seal(shard, epoch, completion, &mut folds);
        for &(s, e, done) in &folds {
            self.expected[level_slot(s)].push_back((e, done));
        }
        self.fold_scratch = folds;
        self.reconcile();
    }

    /// One root-of-roots fold the live coordinator claims to have
    /// performed.
    fn observe_ror(&mut self, shard: u32, epoch: EpochId, done: Cycle) {
        if !self.enabled {
            return;
        }
        self.claimed[level_slot(shard)].push_back((epoch, done));
        self.reconcile();
    }

    /// Matches claimed folds against expected folds, shard by shard in
    /// round order: a fold earlier than the barrier permits breaks the
    /// cross-shard root ordering contract.
    fn reconcile(&mut self) {
        for s in 0..level_slot(self.shards) {
            while !self.expected[s].is_empty() && !self.claimed[s].is_empty() {
                let Some((e_epoch, e_done)) = self.expected[s].pop_front() else {
                    break;
                };
                let Some((_, c_done)) = self.claimed[s].pop_front() else {
                    break;
                };
                if c_done < e_done {
                    self.push_violation(
                        ViolationKind::CrossShardRootOrder,
                        c_done,
                        e_epoch,
                        NO_FIELD,
                    );
                }
            }
        }
    }

    /// End of run: the shadow drains its partial rounds, and every
    /// expected fold the coordinator never performed (or performed
    /// without a matching expectation) is a violation.
    fn finish(mut self) -> SanitizerSummary {
        if !self.enabled {
            return SanitizerSummary::off();
        }
        let mut folds = std::mem::take(&mut self.fold_scratch);
        folds.clear();
        self.shadow.drain(&mut folds);
        for &(s, e, done) in &folds {
            self.expected[level_slot(s)].push_back((e, done));
        }
        self.fold_scratch = folds;
        self.reconcile();
        for s in 0..level_slot(self.shards) {
            while let Some((epoch, done)) = self.expected[s].pop_front() {
                self.push_violation(ViolationKind::CrossShardRootOrder, done, epoch, NO_FIELD);
            }
            while let Some((epoch, done)) = self.claimed[s].pop_front() {
                self.push_violation(ViolationKind::CrossShardRootOrder, done, epoch, NO_FIELD);
            }
        }
        SanitizerSummary {
            mode: SanitizerMode::Check,
            violations: std::mem::take(&mut self.violations),
            dropped_violations: self.dropped,
            ..SanitizerSummary::default()
        }
    }
}

/// A sharded experiment: one [`SimSetup`] template fanned out over a
/// [`ShardTopology`].
///
/// # Example
///
/// ```
/// use plp_core::{ShardTopology, ShardedSetup, SimSetup, SystemConfig, UpdateScheme};
/// use plp_trace::spec;
///
/// let profile = spec::benchmark("milc").unwrap();
/// let setup = SimSetup::for_profile(
///     SystemConfig::for_scheme(UpdateScheme::O3),
///     &profile,
///     7,
/// )
/// .unwrap();
/// let sharded = ShardedSetup::new(setup, ShardTopology::new(2, 2));
/// let report = sharded.run_generated(20_000);
/// assert!(report.sanitizer.is_clean());
/// assert!(report.persists > 0);
/// ```
#[derive(Debug, Clone)]
pub struct ShardedSetup {
    setup: SimSetup,
    topology: ShardTopology,
}

impl ShardedSetup {
    /// Fans `setup` out over `topology`. Every shard gets an identical
    /// configuration (its own caches, engine, WPQ and BMT instance).
    pub fn new(setup: SimSetup, topology: ShardTopology) -> Self {
        ShardedSetup { setup, topology }
    }

    /// The per-shard setup template.
    pub fn setup(&self) -> &SimSetup {
        &self.setup
    }

    /// The run topology.
    pub fn topology(&self) -> ShardTopology {
        self.topology
    }

    /// Runs one trace per stream and merges the shard reports.
    ///
    /// The unit topology takes the classic unsharded path — its output
    /// is byte-identical to [`SimSetup::run`] on the same trace.
    ///
    /// # Panics
    ///
    /// Panics unless `traces.len()` equals the topology's stream
    /// count.
    pub fn run(&self, traces: &[&Trace]) -> RunReport {
        assert_eq!(
            traces.len(),
            level_slot(self.topology.streams),
            "one trace per stream"
        );
        if self.topology.is_unit() {
            return self.setup.run(traces[0]);
        }
        self.run_coordinated(traces, None)
    }

    /// Like [`ShardedSetup::run`], but with a deliberately broken
    /// coordinator — the cross-shard mutation-test hook. Always takes
    /// the coordinated path, unit topology included.
    ///
    /// # Panics
    ///
    /// Panics unless `traces.len()` equals the topology's stream
    /// count.
    pub fn run_mutated(&self, traces: &[&Trace], mutation: ShardMutation) -> RunReport {
        assert_eq!(
            traces.len(),
            level_slot(self.topology.streams),
            "one trace per stream"
        );
        self.run_coordinated(traces, Some(mutation))
    }

    /// Generates each stream's trace (stream 0 uses the run seed
    /// verbatim; higher streams use [`multi::stream_seed`]) and runs
    /// the topology — the whole sharded experiment as a pure function
    /// of the setup.
    ///
    /// # Panics
    ///
    /// Panics if the setup was not built with
    /// [`SimSetup::for_profile`].
    pub fn run_generated(&self, instructions: u64) -> RunReport {
        let profile = match self.setup.profile() {
            Some(p) => p.clone(),
            // lint: allow(no-panic-lib) documented panic contract for profile-less setups
            None => panic!("ShardedSetup::run_generated needs a profile-bound setup"),
        };
        let traces: Vec<Trace> = (0..self.topology.streams)
            .map(|stream| {
                let seed = multi::stream_seed(self.setup.seed(), stream);
                plp_trace::TraceGenerator::new(profile.clone(), seed).generate(instructions)
            })
            .collect();
        let refs: Vec<&Trace> = traces.iter().collect();
        self.run(&refs)
    }

    /// The deterministic arbiter + shard loop. `run` routes the unit
    /// topology around this, but the path itself reproduces the
    /// unsharded simulator exactly at 1×1 (pinned by tests).
    fn run_coordinated(&self, traces: &[&Trace], mutation: Option<ShardMutation>) -> RunReport {
        let streams = self.topology.streams;
        let shards = self.topology.shards;
        let config = self.setup.config();
        let map = ShardMap::new(shards);
        let cpi = 1.0 / self.setup.base_ipc();
        let eff_mac = if config.ideal_metadata {
            Cycle::ZERO
        } else {
            config.mac_latency
        };
        let cross_shard = shards > 1;
        // Stream windows are strided to fit the topology's global
        // integrity coverage: M shards each carry a full per-shard BMT,
        // so `leaf_count * shards` pages are covered in total. Ablation
        // configs with shrunken trees shrink the stride with them;
        // stream 0 stays at offset zero either way.
        let stride = multi::fitted_stride(streams, config.bmt.leaf_count() * shards as u64);

        let mut sims: Vec<Simulation> = Vec::with_capacity(level_slot(shards));
        for _ in 0..shards {
            let mut sim = self.setup.simulation();
            if cross_shard {
                sim.enable_seal_log();
            }
            sims.push(sim);
        }

        let mut iters: Vec<_> = traces.iter().map(|t| t.iter().peekable()).collect();
        let mut clocks = vec![0.0f64; level_slot(streams)];
        let mut instr = vec![0u64; level_slot(shards)];
        let mut observer = ShardObserver::new(
            config.scheme,
            streams,
            shards,
            eff_mac,
            config.sanitizer.is_on(),
        );
        // The live root-of-roots: the same barrier model the shadow
        // uses, unless a mutation breaks it on purpose.
        let mut ror = BarrierModel::new(shards, eff_mac);
        let mut folds: Vec<(u32, EpochId, Cycle)> = Vec::new();
        let mut seal_buf: Vec<SealEvent> = Vec::new();
        let reorder_acks = mutation == Some(ShardMutation::ReorderAcks);
        let mut held_acks: Vec<Option<(BlockAddr, Cycle)>> =
            vec![None; level_slot(streams) * level_slot(shards)];

        loop {
            // Earliest next arrival wins; ties break to the lowest
            // stream id (ascending scan keeps the first minimum).
            let mut best: Option<(u32, f64)> = None;
            for s in 0..streams {
                if let Some(ev) = iters[level_slot(s)].peek() {
                    let arrival =
                        clocks[level_slot(s)] + (ev.gap_instructions as f64 + 1.0) * cpi;
                    best = match best {
                        Some((bs, ba)) if ba <= arrival => Some((bs, ba)),
                        _ => Some((s, arrival)),
                    };
                }
            }
            let Some((s, arrival)) = best else { break };
            clocks[level_slot(s)] = arrival;
            let Some(ev) = iters[level_slot(s)].next() else {
                break;
            };
            let now = Cycle::new(arrival as u64);
            match ev.op {
                Op::Load { addr } => {
                    let (shard, local) = map.localize(multi::rebase_with(addr, s, stride));
                    instr[level_slot(shard)] += ev.gap_instructions as u64 + 1;
                    sims[level_slot(shard)].step_load(local, now);
                }
                Op::Store { addr, stack } => {
                    let global = multi::rebase_with(addr, s, stride);
                    let (shard, local) = map.localize(global);
                    let sh = level_slot(shard);
                    instr[sh] += ev.gap_instructions as u64 + 1;
                    let out = sims[sh].step_store(local, stack, now, arrival);
                    clocks[level_slot(s)] = out.clock;
                    if let Some(done) = out.completion {
                        // The ack interconnect: direct delivery, or the
                        // pair-swapping mutant.
                        let key = level_slot(s) * level_slot(shards) + sh;
                        if reorder_acks {
                            if let Some((held_addr, held_done)) = held_acks[key].take() {
                                observer.observe_ack(s, shard, global, done);
                                observer.observe_ack(s, shard, held_addr, held_done);
                            } else {
                                held_acks[key] = Some((global, done));
                            }
                        } else {
                            observer.observe_ack(s, shard, global, done);
                        }
                    }
                    if cross_shard {
                        seal_buf.clear();
                        sims[sh].drain_seals_into(&mut seal_buf);
                        for &sev in &seal_buf {
                            let completion = sev
                                .completion
                                .unwrap_or(sims[sh].last_completion_cycle());
                            self.fold_seal(
                                shard, sev.epoch, completion, mutation, &mut ror, &mut folds,
                                &mut observer,
                            );
                        }
                    }
                }
            }
        }

        // Any leftover held ack flushes straight through.
        for (key, slot) in held_acks.iter_mut().enumerate() {
            if let Some((held_addr, held_done)) = slot.take() {
                let stream_slot = key / level_slot(shards);
                let shard_slot = key % level_slot(shards);
                let mut stream = 0u32;
                let mut shard = 0u32;
                while level_slot(stream) < stream_slot {
                    stream += 1;
                }
                while level_slot(shard) < shard_slot {
                    shard += 1;
                }
                observer.observe_ack(stream, shard, held_addr, held_done);
            }
        }

        // Drain: every stream has retired; shards seal partial epochs
        // against the global final clock, then fold their last roots.
        let mut final_clock = 0.0f64;
        for &c in &clocks {
            final_clock = final_clock.max(c);
        }
        let mut shard_clocks = vec![final_clock; level_slot(shards)];
        for shard in 0..shards {
            let sh = level_slot(shard);
            shard_clocks[sh] = sims[sh].drain_epoch(final_clock);
            if cross_shard {
                seal_buf.clear();
                sims[sh].drain_seals_into(&mut seal_buf);
                for &sev in &seal_buf {
                    let completion = sev
                        .completion
                        .unwrap_or(sims[sh].last_completion_cycle());
                    self.fold_seal(
                        shard, sev.epoch, completion, mutation, &mut ror, &mut folds,
                        &mut observer,
                    );
                }
                if !config.scheme.is_epoch_based() {
                    // Strict (and unordered) schemes never seal: each
                    // shard's final durable frontier joins the
                    // root-of-roots once, as round 0.
                    let completion = sims[sh].last_completion_cycle();
                    self.fold_seal(
                        shard,
                        EpochId(0),
                        completion,
                        mutation,
                        &mut ror,
                        &mut folds,
                        &mut observer,
                    );
                }
            }
        }
        if cross_shard && mutation != Some(ShardMutation::SkipRootOfRoots) {
            folds.clear();
            ror.drain(&mut folds);
            for &(fs, fe, fd) in &folds {
                observer.observe_ror(fs, fe, fd);
            }
        }
        let frontier = ror.frontier;

        // Finish every shard and merge.
        let mut merged: Option<RunReport> = None;
        for (sh, sim) in sims.into_iter().enumerate() {
            let (report, _) = sim.finish(instr[sh], shard_clocks[sh]);
            merged = Some(match merged {
                None => report,
                Some(mut acc) => {
                    merge_into(&mut acc, report);
                    acc
                }
            });
        }
        let mut merged = merged.unwrap_or_default();
        merged.total_cycles = merged.total_cycles.max(frontier);
        merged.sanitizer.merge(&observer.finish());
        merged
    }

    /// Routes one observed seal through the live root-of-roots (or a
    /// mutation of it) and reports every resulting fold — and the seal
    /// itself — to the shadow observer.
    #[allow(clippy::too_many_arguments)]
    fn fold_seal(
        &self,
        shard: u32,
        epoch: EpochId,
        completion: Cycle,
        mutation: Option<ShardMutation>,
        ror: &mut BarrierModel,
        folds: &mut Vec<(u32, EpochId, Cycle)>,
        observer: &mut ShardObserver,
    ) {
        observer.observe_seal(shard, epoch, completion);
        match mutation {
            Some(ShardMutation::SkipRootOfRoots) => {}
            Some(ShardMutation::SkipEpochBarrier) => {
                // Fold immediately: no barrier, no chain, just the MAC.
                let done = completion + ror.mac;
                ror.last[level_slot(shard)] = done;
                ror.frontier = ror.frontier.max(done);
                observer.observe_ror(shard, epoch, done);
            }
            Some(ShardMutation::ReorderAcks) | None => {
                folds.clear();
                ror.push_seal(shard, epoch, completion, folds);
                for &(fs, fe, fd) in folds.iter() {
                    observer.observe_ror(fs, fe, fd);
                }
            }
        }
    }
}

/// Folds shard report `r` into `acc`: cycles and peaks max, event
/// counts and cache/NVM statistics sum field by field, sanitizer
/// summaries merge, records concatenate in shard order.
fn merge_into(acc: &mut RunReport, r: RunReport) {
    acc.total_cycles = acc.total_cycles.max(r.total_cycles);
    acc.instructions += r.instructions;
    acc.persists += r.persists;
    acc.writebacks += r.writebacks;
    acc.epochs += r.epochs;
    acc.engine.node_updates += r.engine.node_updates;
    acc.engine.bmt_fetches += r.engine.bmt_fetches;
    acc.engine.persists += r.engine.persists;
    acc.coalesced_saved_updates += r.coalesced_saved_updates;
    acc.page_overflows += r.page_overflows;
    acc.overflow_blocks += r.overflow_blocks;
    acc.wpq_stall_cycles += r.wpq_stall_cycles;
    acc.wpq_peak = acc.wpq_peak.max(r.wpq_peak);
    merge_cache(&mut acc.metadata.counter, &r.metadata.counter);
    merge_cache(&mut acc.metadata.mac, &r.metadata.mac);
    merge_cache(&mut acc.metadata.bmt, &r.metadata.bmt);
    for i in 0..acc.data_caches.len() {
        merge_cache(&mut acc.data_caches[i], &r.data_caches[i]);
    }
    acc.nvm.reads += r.nvm.reads;
    acc.nvm.writes += r.nvm.writes;
    acc.nvm.writes_combined += r.nvm.writes_combined;
    acc.nvm.row_hits += r.nvm.row_hits;
    acc.nvm.row_misses += r.nvm.row_misses;
    acc.nvm.queue_stall_cycles += r.nvm.queue_stall_cycles;
    acc.nvm.read_retries += r.nvm.read_retries;
    acc.nvm.read_failures += r.nvm.read_failures;
    acc.sanitizer.merge(&r.sanitizer);
    acc.records.extend(r.records);
}

fn merge_cache(acc: &mut plp_cache::CacheStats, r: &plp_cache::CacheStats) {
    acc.hits += r.hits;
    acc.misses += r.misses;
    acc.evictions += r.evictions;
    acc.dirty_evictions += r.dirty_evictions;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;
    use plp_trace::{spec, TraceGenerator};

    fn trace_for(name: &str, seed: u64, n: u64) -> Trace {
        TraceGenerator::new(spec::benchmark(name).unwrap(), seed).generate(n)
    }

    fn sharded(scheme: UpdateScheme, streams: u32, shards: u32) -> ShardedSetup {
        let profile = spec::benchmark("gcc").unwrap();
        let setup =
            SimSetup::for_profile(SystemConfig::for_scheme(scheme), &profile, 7).unwrap();
        ShardedSetup::new(setup, ShardTopology::new(streams, shards))
    }

    #[test]
    fn coordinated_unit_topology_reproduces_unsharded_run() {
        // The arbiter path itself — not just the fast path — must be
        // exactly the unsharded simulator at 1x1.
        for scheme in [UpdateScheme::Sp, UpdateScheme::O3, UpdateScheme::Coalescing] {
            let trace = trace_for("gcc", 7, 30_000);
            let s = sharded(scheme, 1, 1);
            let plain = s.setup().run(&trace);
            let coordinated = s.run_coordinated(&[&trace], None);
            assert_eq!(plain, coordinated, "{scheme}: 1x1 arbiter diverged");
        }
    }

    #[test]
    fn unit_fast_path_matches_coordinated() {
        let trace = trace_for("gcc", 7, 20_000);
        let s = sharded(UpdateScheme::Pipeline, 1, 1);
        assert_eq!(s.run(&[&trace]), s.run_coordinated(&[&trace], None));
    }

    #[test]
    fn shrunken_trees_fit_every_stream_window() {
        // The fig-11 ablation shrinks the BMT to 7 levels (262144
        // leaves). The stream stride contracts with the coverage, so
        // sharded runs of the ablation configs neither fall off the
        // tree nor trip the sanitizer.
        let profile = spec::benchmark("gcc").unwrap();
        let mut config = SystemConfig::for_scheme(UpdateScheme::Sp);
        config.bmt = plp_bmt::BmtGeometry::new(8, 7);
        let setup = SimSetup::for_profile(config, &profile, 7).unwrap();
        let s = ShardedSetup::new(setup, ShardTopology::new(2, 2));
        let traces: Vec<Trace> = (0..2)
            .map(|st| {
                let profile = spec::benchmark("gcc").unwrap();
                TraceGenerator::new(profile, multi::stream_seed(7, st)).generate(8_000)
            })
            .collect();
        let refs: Vec<&Trace> = traces.iter().collect();
        let report = s.run(&refs);
        assert!(report.sanitizer.is_clean());
        assert!(report.instructions >= 16_000);
    }

    #[test]
    fn sharded_runs_are_deterministic() {
        for (streams, shards) in [(2, 2), (4, 2), (1, 4), (3, 1)] {
            let s = sharded(UpdateScheme::O3, streams, shards);
            let a = s.run_generated(15_000);
            let b = s.run_generated(15_000);
            assert_eq!(a, b, "{streams}x{shards} not deterministic");
        }
    }

    #[test]
    fn sharded_runs_stay_clean_for_correct_schemes() {
        // The extended set pulls in the zoo: `triad_nvm`'s truncated
        // walk and `phoenix`'s dual-copy commit must stay sanitizer-
        // clean under cross-shard coordination too.
        for scheme in UpdateScheme::all_extended() {
            let s = sharded(scheme, 2, 2);
            let r = s.run_generated(15_000);
            assert!(
                r.sanitizer.is_clean(),
                "{scheme} 2x2: {:?}",
                r.sanitizer.violations
            );
            assert!(r.persists > 0 || scheme == UpdateScheme::SecureWb);
        }
    }

    #[test]
    fn streams_scale_total_work() {
        let one = sharded(UpdateScheme::O3, 1, 2).run_generated(20_000);
        let four = sharded(UpdateScheme::O3, 4, 2).run_generated(20_000);
        assert!(four.instructions > 3 * one.instructions);
        assert!(four.persists > 2 * one.persists);
    }

    #[test]
    fn skip_root_of_roots_is_caught() {
        let s = sharded(UpdateScheme::O3, 2, 2);
        let traces: Vec<Trace> = (0..2)
            .map(|i| trace_for("gcc", multi::stream_seed(7, i), 15_000))
            .collect();
        let refs: Vec<&Trace> = traces.iter().collect();
        let r = s.run_mutated(&refs, ShardMutation::SkipRootOfRoots);
        assert!(
            r.sanitizer.count_of(ViolationKind::CrossShardRootOrder) > 0,
            "skipped root-of-roots went unnoticed"
        );
    }

    #[test]
    fn skip_epoch_barrier_is_caught() {
        let s = sharded(UpdateScheme::O3, 2, 2);
        let traces: Vec<Trace> = (0..2)
            .map(|i| trace_for("gcc", multi::stream_seed(7, i), 40_000))
            .collect();
        let refs: Vec<&Trace> = traces.iter().collect();
        let r = s.run_mutated(&refs, ShardMutation::SkipEpochBarrier);
        assert!(
            r.sanitizer.count_of(ViolationKind::CrossShardRootOrder) > 0,
            "barrier-skipping folds went unnoticed"
        );
    }

    #[test]
    fn reordered_acks_are_caught() {
        let s = sharded(UpdateScheme::Sp, 2, 2);
        let traces: Vec<Trace> = (0..2)
            .map(|i| trace_for("gcc", multi::stream_seed(7, i), 15_000))
            .collect();
        let refs: Vec<&Trace> = traces.iter().collect();
        let r = s.run_mutated(&refs, ShardMutation::ReorderAcks);
        assert!(
            r.sanitizer.count_of(ViolationKind::StreamOrder) > 0,
            "reordered acks went unnoticed"
        );
    }

    #[test]
    fn barrier_model_orders_rounds() {
        let mut m = BarrierModel::new(2, Cycle::new(10));
        let mut out = Vec::new();
        // Shard 0 seals twice before shard 1 seals once: nothing folds
        // until round 0 completes.
        m.push_seal(0, EpochId(0), Cycle::new(100), &mut out);
        m.push_seal(0, EpochId(1), Cycle::new(200), &mut out);
        assert!(out.is_empty());
        m.push_seal(1, EpochId(0), Cycle::new(150), &mut out);
        // Round 0: folds at 110 and 160; barrier becomes 160.
        assert_eq!(out, vec![(0, EpochId(0), Cycle::new(110)), (1, EpochId(0), Cycle::new(160))]);
        out.clear();
        m.drain(&mut out);
        // Round 1 (partial): shard 0's second seal waits for the
        // barrier: max(200, 160, 110) + 10.
        assert_eq!(out, vec![(0, EpochId(1), Cycle::new(210))]);
        assert_eq!(m.frontier, Cycle::new(210));
    }

    #[test]
    fn topology_accessors() {
        assert_eq!(ShardTopology::default(), ShardTopology::unit());
        assert_eq!(ShardTopology::new(4, 8).to_string(), "4x8");
        assert!(!ShardTopology::new(1, 2).is_unit());
        assert!(!ShardTopology::new(2, 1).is_unit());
    }
}
