//! Simulation run reports.

use plp_cache::CacheStats;
use plp_events::Cycle;
use plp_nvm::NvmStats;
use serde::{Deserialize, Serialize};

use crate::engine::EngineStats;
use crate::meta::MetadataStats;
use crate::sanitizer::SanitizerSummary;
use crate::PersistRecord;

/// Everything a simulation run measured.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Total execution time in cycles (instruction stream retired and
    /// all persists drained).
    pub total_cycles: Cycle,
    /// Instructions retired.
    pub instructions: u64,
    /// Ordered persists issued (stores under SP; epoch-flush blocks
    /// under EP).
    pub persists: u64,
    /// Background security write-backs (LLC dirty evictions).
    pub writebacks: u64,
    /// Epochs sealed (epoch-persistency schemes only).
    pub epochs: u64,
    /// Engine counters (node updates, BMT fetches).
    pub engine: EngineStats,
    /// Node updates eliminated by coalescing.
    pub coalesced_saved_updates: u64,
    /// Minor-counter overflows (each re-encrypts its whole page).
    pub page_overflows: u64,
    /// Blocks re-encrypted by page overflows.
    pub overflow_blocks: u64,
    /// Cycles stores stalled on a full WPQ.
    pub wpq_stall_cycles: u64,
    /// Peak WPQ occupancy.
    pub wpq_peak: usize,
    /// Metadata cache statistics.
    pub metadata: MetadataStats,
    /// Data hierarchy statistics (L1/L2/L3).
    pub data_caches: [CacheStats; 3],
    /// NVM device statistics.
    pub nvm: NvmStats,
    /// Invariant sanitizer verdict (mode, checked-event counts and any
    /// violations; see [`crate::sanitizer`]).
    pub sanitizer: SanitizerSummary,
    /// Per-persist records (only when
    /// [`crate::SystemConfig::record_persists`] is set).
    pub records: Vec<PersistRecord>,
}

impl RunReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.total_cycles == Cycle::ZERO {
            0.0
        } else {
            self.instructions as f64 / self.total_cycles.get() as f64
        }
    }

    /// Ordered persists per kilo-instruction (the paper's PPKI).
    pub fn persist_ppki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.persists as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Execution time normalized to a baseline run of the same trace
    /// (the y-axis of Figs. 8–10 and 12).
    pub fn normalized_to(&self, baseline: &RunReport) -> f64 {
        if baseline.total_cycles == Cycle::ZERO {
            return 0.0;
        }
        self.total_cycles.get() as f64 / baseline.total_cycles.get() as f64
    }

    /// Fractional reduction in BMT node updates relative to `other`
    /// (the coalescing-vs-o3 statistic; §VII reports 26.1%).
    pub fn node_update_reduction_vs(&self, other: &RunReport) -> f64 {
        if other.engine.node_updates == 0 {
            return 0.0;
        }
        1.0 - self.engine.node_updates as f64 / other.engine.node_updates as f64
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycles={} instr={} ipc={:.3} persists={} ppki={:.2} epochs={} node_updates={}",
            self.total_cycles,
            self.instructions,
            self.ipc(),
            self.persists,
            self.persist_ppki(),
            self.epochs,
            self.engine.node_updates,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let mut r = RunReport::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.persist_ppki(), 0.0);
        r.total_cycles = Cycle::new(2000);
        r.instructions = 1000;
        r.persists = 50;
        assert!((r.ipc() - 0.5).abs() < 1e-12);
        assert!((r.persist_ppki() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let base = RunReport {
            total_cycles: Cycle::new(1000),
            ..RunReport::default()
        };
        let slow = RunReport {
            total_cycles: Cycle::new(7200),
            ..RunReport::default()
        };
        assert!((slow.normalized_to(&base) - 7.2).abs() < 1e-12);
        assert_eq!(slow.normalized_to(&RunReport::default()), 0.0);
    }

    #[test]
    fn node_update_reduction() {
        let mut o3 = RunReport::default();
        o3.engine.node_updates = 1000;
        let mut co = RunReport::default();
        co.engine.node_updates = 739;
        assert!((co.node_update_reduction_vs(&o3) - 0.261).abs() < 1e-9);
        assert_eq!(co.node_update_reduction_vs(&RunReport::default()), 0.0);
    }

    #[test]
    fn display_contains_key_fields() {
        let r = RunReport::default();
        let s = r.to_string();
        assert!(s.contains("cycles=") && s.contains("ppki="));
    }
}
