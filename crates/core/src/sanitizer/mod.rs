//! The persist-order invariant sanitizer: a shadow verifier for the
//! paper's two correctness invariants.
//!
//! The simulator's timing engines *claim* ordering guarantees — the
//! crash-recovery tuple of Invariant 1 and the per-level persist-order
//! preservation of Invariant 2 — but until now those claims were only
//! exercised indirectly, through crash sweeps at sampled points. The
//! sanitizer checks them **on every persist event of every run**: it
//! subscribes to the single persist path
//! ([`crate::Simulation`]'s `persist_block`) and to every BMT node
//! update each engine schedules (via
//! [`crate::engine::EngineCtx::note_update`]), and validates the
//! scheme's contract event by event:
//!
//! * **Invariant 1** — at persist retirement the memory tuple
//!   `(C, γ, M, R)` is complete: every component carries the same
//!   durable timestamp (the 2SP atomicity guarantee). Checked for every
//!   scheme that promises tuple atomicity
//!   ([`SchemeContract::atomic_tuple`]).
//! * **Invariant 2, strict family** — each persist's BMT walk covers
//!   every tree level exactly once, leaf to root, with monotonically
//!   non-decreasing completion times; per level, successive persists
//!   complete in order; and whole tuples retire in persist order
//!   ([`SchemeContract::strict_walk`]).
//! * **Invariant 2, epoch family** — per tree level, no update of
//!   epoch *k+1* completes before the last update a sealed epoch ≤ *k*
//!   made to that level (the ETT handoff), and sealed epochs complete
//!   in order ([`SchemeContract::epoch_order`]).
//! * **WAW safety** — §IV-B1's lemma makes same-epoch writes to a
//!   common BMT ancestor reorderable; *cross-epoch* writes to the same
//!   node are not. Any cross-epoch out-of-order write to the same node
//!   is flagged as a WAW hazard.
//!
//! The `unordered` strawman promises nothing, so its contract disables
//! every check — by design it produces zero violations *and* zero
//! guarantees; the crash sweeps remain the tool that demonstrates its
//! failures.
//!
//! Violations are reported as structured [`Violation`] records (cycle,
//! scheme, address, level, node) collected into a
//! [`SanitizerSummary`] on the [`crate::RunReport`]. The checks are
//! pure observation: enabling the sanitizer never changes a simulated
//! timestamp, so stdout artefacts stay byte-identical (pinned by
//! `crates/bench/tests/sanitizer_determinism.rs`). A deliberately
//! broken [`crate::engine::MutantEngine`] proves every check fires
//! (`crates/core/tests/sanitizer_mutations.rs`).

mod checks;

pub use checks::Sanitizer;

use plp_bmt::NodeLabel;
use plp_events::addr::BlockAddr;
use plp_events::Cycle;
use serde::{Deserialize, Serialize};

use crate::{EpochId, PersistId, TupleTimes, UpdateScheme};

/// Whether (and how) the invariant sanitizer runs alongside a
/// simulation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SanitizerMode {
    /// No shadow verification (the pre-sanitizer behaviour).
    Off,
    /// Verify every persist event and collect violations into the run
    /// report. The default: tier-1 tests and the `all` matrix run with
    /// the sanitizer on.
    #[default]
    Check,
}

impl SanitizerMode {
    /// Whether the sanitizer observes the run.
    pub fn is_on(self) -> bool {
        self != SanitizerMode::Off
    }

    /// Stable machine name (the run-cache codec's rendering).
    pub fn name(self) -> &'static str {
        match self {
            SanitizerMode::Off => "off",
            SanitizerMode::Check => "check",
        }
    }

    /// Parses a [`SanitizerMode::name`] rendering.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "off" => Some(SanitizerMode::Off),
            "check" => Some(SanitizerMode::Check),
            _ => None,
        }
    }
}

/// The ordering guarantees a scheme claims — what the sanitizer holds
/// it to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemeContract {
    /// Invariant 1: the whole memory tuple retires atomically (2SP).
    pub atomic_tuple: bool,
    /// Invariant 2, strict form: full in-order leaf-to-root walks,
    /// per-level and whole-tuple persist order.
    pub strict_walk: bool,
    /// Invariant 2, epoch form: per-level cross-epoch handoff, ordered
    /// epoch completions and cross-epoch WAW safety.
    pub epoch_order: bool,
    /// Invariant 2, truncated form (`triad_nvm`): each persist's walk
    /// covers a *contiguous suffix* of levels ending at the leaf level
    /// — exactly once per covered level, deepest first, monotone — and
    /// the suffix's shallowest level (the persisted floor) is the same
    /// for every persist of the run. Levels above the floor are
    /// legitimately absent; the strict per-level cross-persist order
    /// still holds over the covered slice.
    pub truncated_walk: bool,
}

impl SchemeContract {
    /// The contract `scheme` claims.
    pub fn for_scheme(scheme: UpdateScheme) -> Self {
        match scheme {
            UpdateScheme::SecureWb
            | UpdateScheme::Sp
            | UpdateScheme::Pipeline
            | UpdateScheme::SpCounterTree
            // The dual-copy commit adds durability on top of a fully
            // strict serialized walk, so `phoenix` is held to the same
            // contract as the `sp` family.
            | UpdateScheme::Phoenix => SchemeContract {
                atomic_tuple: true,
                strict_walk: true,
                epoch_order: false,
                truncated_walk: false,
            },
            UpdateScheme::O3 | UpdateScheme::Coalescing => SchemeContract {
                atomic_tuple: true,
                strict_walk: false,
                epoch_order: true,
                truncated_walk: false,
            },
            // Relaxed upper levels: the tuple is *not* atomic (the MAC
            // and root trail the data/counter pair through the lazy
            // window), but the strict slice must still walk in order.
            UpdateScheme::TriadNvm => SchemeContract {
                atomic_tuple: false,
                strict_walk: false,
                epoch_order: false,
                truncated_walk: true,
            },
            // The strawman promises nothing: no checks, no guarantees.
            UpdateScheme::Unordered => SchemeContract {
                atomic_tuple: false,
                strict_walk: false,
                epoch_order: false,
                truncated_walk: false,
            },
        }
    }

    /// Whether any check is active.
    pub fn checks_anything(&self) -> bool {
        self.atomic_tuple || self.strict_walk || self.epoch_order || self.truncated_walk
    }
}

/// Which invariant a [`Violation`] breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Invariant 1: a tuple component retired at a different time than
    /// the rest of its persist's tuple.
    TupleIncomplete,
    /// Invariant 2 (strict): a whole tuple retired before an older
    /// persist's tuple.
    RootOrder,
    /// Invariant 2 (strict): a BMT level was updated out of order —
    /// within a walk (a shallower node completed before a deeper one)
    /// or across persists (a level's completions regressed).
    LevelOrder,
    /// Invariant 2 (strict): a persist's walk skipped (or duplicated)
    /// a tree level.
    SkippedLevel,
    /// Invariant 2 (epoch): a level update of a younger epoch completed
    /// before a sealed older epoch's last update of that level.
    EpochLevelOrder,
    /// Invariant 2 (epoch): a sealed epoch completed before its
    /// predecessor.
    EpochCompletionOrder,
    /// WAW safety: a cross-epoch out-of-order write to the same BMT
    /// node.
    WawHazard,
    /// Sharded topology: within one client stream, a shard's ordered
    /// persists completed out of program order (Invariants 1 & 2 must
    /// hold per stream within each shard).
    StreamOrder,
    /// Sharded topology: a root-of-roots update regressed or ignored
    /// the cross-shard epoch barrier (no shard may seal epoch E+1's
    /// root before every shard has durably sealed E).
    CrossShardRootOrder,
}

impl ViolationKind {
    /// Every kind, in a stable order (codec + reporting).
    pub const ALL: [ViolationKind; 9] = [
        ViolationKind::TupleIncomplete,
        ViolationKind::RootOrder,
        ViolationKind::LevelOrder,
        ViolationKind::SkippedLevel,
        ViolationKind::EpochLevelOrder,
        ViolationKind::EpochCompletionOrder,
        ViolationKind::WawHazard,
        ViolationKind::StreamOrder,
        ViolationKind::CrossShardRootOrder,
    ];

    /// Stable machine name.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::TupleIncomplete => "tuple_incomplete",
            ViolationKind::RootOrder => "root_order",
            ViolationKind::LevelOrder => "level_order",
            ViolationKind::SkippedLevel => "skipped_level",
            ViolationKind::EpochLevelOrder => "epoch_level_order",
            ViolationKind::EpochCompletionOrder => "epoch_completion_order",
            ViolationKind::WawHazard => "waw_hazard",
            ViolationKind::StreamOrder => "stream_order",
            ViolationKind::CrossShardRootOrder => "cross_shard_root_order",
        }
    }

    /// Parses a [`ViolationKind::name`] rendering.
    pub fn parse(name: &str) -> Option<Self> {
        ViolationKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Sentinel for "no node / no address" in a [`Violation`].
pub const NO_FIELD: u64 = u64::MAX;

/// One observed invariant violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// Scheme whose contract was violated.
    pub scheme: UpdateScheme,
    /// Simulated cycle of the offending event.
    pub cycle: Cycle,
    /// Epoch the event belonged to.
    pub epoch: EpochId,
    /// Persist the event belonged to ([`NO_FIELD`] when the event is
    /// not attributable to a single persist, e.g. a coalesced seal
    /// walk).
    pub persist: u64,
    /// 1-based tree level (0 when not level-specific).
    pub level: u32,
    /// Raw BMT node label ([`NO_FIELD`] when not node-specific).
    pub node: u64,
    /// Data block index ([`NO_FIELD`] when not address-specific).
    pub addr: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] at cycle {} ({}",
            self.kind, self.scheme, self.cycle, self.epoch
        )?;
        if self.persist != NO_FIELD {
            write!(f, ", {}", PersistId(self.persist))?;
        }
        if self.level != 0 {
            write!(f, ", level {}", self.level)?;
        }
        if self.node != NO_FIELD {
            write!(f, ", node n{}", self.node)?;
        }
        if self.addr != NO_FIELD {
            write!(f, ", block {}", self.addr)?;
        }
        write!(f, ")")
    }
}

/// One BMT node update an engine scheduled, as seen by the sanitizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeUpdateEvent {
    /// The updated node.
    pub label: NodeLabel,
    /// Its 1-based tree level (1 = root).
    pub level: u32,
    /// When the update's MAC completes.
    pub done: Cycle,
}

/// One persist retirement, as seen by the sanitizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PersistEvent {
    /// Program-order persist id.
    pub id: PersistId,
    /// Epoch the persist belongs to.
    pub epoch: EpochId,
    /// Data block address.
    pub addr: BlockAddr,
    /// Whether the crash-recovery observer may rely on this persist
    /// (vs. a background eviction write-back).
    pub ordered: bool,
    /// When each tuple component became durable.
    pub times: TupleTimes,
}

/// What the sanitizer checked and found over one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SanitizerSummary {
    /// The mode the run used.
    pub mode: SanitizerMode,
    /// Persist retirements checked.
    pub checked_persists: u64,
    /// BMT node updates checked.
    pub checked_node_updates: u64,
    /// Epoch seals checked.
    pub checked_epochs: u64,
    /// Violations beyond the detail cap (counted, not stored).
    pub dropped_violations: u64,
    /// Detailed violation records (capped; see
    /// [`SanitizerSummary::total_violations`] for the full count).
    pub violations: Vec<Violation>,
}

impl SanitizerSummary {
    /// A summary for a run with the sanitizer off.
    pub fn off() -> Self {
        SanitizerSummary {
            mode: SanitizerMode::Off,
            ..SanitizerSummary::default()
        }
    }

    /// Total violations observed, stored or dropped.
    pub fn total_violations(&self) -> u64 {
        self.violations.len() as u64 + self.dropped_violations
    }

    /// Stored violations of `kind` (capped at the detail limit).
    pub fn count_of(&self, kind: ViolationKind) -> u64 {
        self.violations.iter().filter(|v| v.kind == kind).count() as u64
    }

    /// Whether the run upheld its scheme's whole contract.
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// Folds another summary in (the sharded coordinator merges one
    /// per shard plus its own cross-shard checks). Counts and stored
    /// violations add; the mode stays `Check` if either side checked.
    pub fn merge(&mut self, other: &SanitizerSummary) {
        if other.mode.is_on() {
            self.mode = other.mode;
        }
        self.checked_persists += other.checked_persists;
        self.checked_node_updates += other.checked_node_updates;
        self.checked_epochs += other.checked_epochs;
        self.dropped_violations += other.dropped_violations;
        self.violations.extend(other.violations.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contracts_partition_schemes() {
        for scheme in UpdateScheme::all_extended() {
            let c = SchemeContract::for_scheme(scheme);
            // The walk contracts are mutually exclusive.
            assert!(
                [c.strict_walk, c.epoch_order, c.truncated_walk]
                    .into_iter()
                    .filter(|&b| b)
                    .count()
                    <= 1,
                "{scheme}"
            );
            if scheme == UpdateScheme::Unordered {
                assert!(!c.checks_anything());
            } else {
                assert!(c.checks_anything(), "{scheme} must claim something");
            }
        }
        assert!(SchemeContract::for_scheme(UpdateScheme::O3).epoch_order);
        assert!(SchemeContract::for_scheme(UpdateScheme::Pipeline).strict_walk);
        // The zoo: phoenix is strict like sp; triad_nvm claims only the
        // truncated walk (its tuple is deliberately non-atomic).
        let phoenix = SchemeContract::for_scheme(UpdateScheme::Phoenix);
        assert!(phoenix.strict_walk && phoenix.atomic_tuple);
        let triad = SchemeContract::for_scheme(UpdateScheme::TriadNvm);
        assert!(triad.truncated_walk);
        assert!(!triad.atomic_tuple && !triad.strict_walk && !triad.epoch_order);
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in ViolationKind::ALL {
            assert_eq!(ViolationKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(ViolationKind::parse("nonsense"), None);
    }

    #[test]
    fn summary_accounting() {
        let mut s = SanitizerSummary::default();
        assert!(s.is_clean());
        assert_eq!(s.mode, SanitizerMode::Check);
        s.violations.push(Violation {
            kind: ViolationKind::WawHazard,
            scheme: UpdateScheme::O3,
            cycle: Cycle::new(10),
            epoch: EpochId(1),
            persist: 3,
            level: 2,
            node: 7,
            addr: NO_FIELD,
        });
        s.dropped_violations = 2;
        assert_eq!(s.total_violations(), 3);
        assert_eq!(s.count_of(ViolationKind::WawHazard), 1);
        assert_eq!(s.count_of(ViolationKind::RootOrder), 0);
        assert!(!s.is_clean());
        assert!(SanitizerSummary::off().mode == SanitizerMode::Off);
    }

    #[test]
    fn summaries_merge_across_shards() {
        let mut merged = SanitizerSummary::off();
        let mut shard = SanitizerSummary {
            checked_persists: 10,
            checked_epochs: 2,
            ..SanitizerSummary::default()
        };
        shard.violations.push(Violation {
            kind: ViolationKind::CrossShardRootOrder,
            scheme: UpdateScheme::O3,
            cycle: Cycle::new(5),
            epoch: EpochId(1),
            persist: NO_FIELD,
            level: 0,
            node: NO_FIELD,
            addr: NO_FIELD,
        });
        merged.merge(&shard);
        merged.merge(&shard);
        assert_eq!(merged.mode, SanitizerMode::Check);
        assert_eq!(merged.checked_persists, 20);
        assert_eq!(merged.checked_epochs, 4);
        assert_eq!(merged.count_of(ViolationKind::CrossShardRootOrder), 2);
        assert!(!merged.is_clean());
    }

    #[test]
    fn violation_display_names_the_invariant() {
        let v = Violation {
            kind: ViolationKind::EpochLevelOrder,
            scheme: UpdateScheme::Coalescing,
            cycle: Cycle::new(99),
            epoch: EpochId(4),
            persist: NO_FIELD,
            level: 3,
            node: 12,
            addr: NO_FIELD,
        };
        let s = v.to_string();
        assert!(s.contains("epoch_level_order"));
        assert!(s.contains("coalescing"));
        assert!(s.contains("level 3"));
        assert!(s.contains("n12"));
    }
}
