//! The sanitizer's state machine: per-event invariant checks.


use plp_bmt::BmtGeometry;
use plp_events::Cycle;

use super::{
    NodeUpdateEvent, PersistEvent, SanitizerSummary, SchemeContract, Violation, ViolationKind,
    NO_FIELD,
};
use crate::{EpochId, PersistId, UpdateScheme};

/// Detailed [`Violation`] records kept per run; the rest are counted in
/// [`SanitizerSummary::dropped_violations`]. A correct engine stores
/// zero, so the cap only bounds a *broken* engine's report.
const MAX_DETAILED_VIOLATIONS: usize = 64;

/// The shadow verifier for one simulation run.
///
/// Construct one per run ([`Sanitizer::new`]), feed it every engine
/// node update ([`Sanitizer::observe_walk`],
/// [`Sanitizer::observe_epoch_tail`]), persist retirement
/// ([`Sanitizer::observe_persist`]) and epoch seal
/// ([`Sanitizer::observe_seal`]), then collect the verdict with
/// [`Sanitizer::finish`]. Which checks run is decided by the scheme's
/// [`SchemeContract`]; all checks are pure observation and never alter
/// simulated time.
#[derive(Debug)]
pub struct Sanitizer {
    scheme: UpdateScheme,
    contract: SchemeContract,
    levels: u32,
    // --- strict-contract state ---
    /// Per-level completion of the latest update (index = level - 1).
    level_last: Vec<Cycle>,
    /// Completion of the latest retired tuple (persists retire in
    /// order under 2SP).
    last_tuple_completion: Cycle,
    /// Reusable per-walk level-coverage counter.
    walk_seen: Vec<u8>,
    /// Truncated contract: the persisted floor observed on the first
    /// walk — every later walk must persist exactly the same suffix.
    observed_floor: Option<u32>,
    // --- epoch-contract state ---
    /// Per-level max completion over all *sealed* epochs (the ETT
    /// authorization levels the sanitizer re-derives independently).
    sealed_level_last: Vec<Cycle>,
    /// Per-level max completion of the open epoch.
    cur_level_max: Vec<Cycle>,
    /// Max completion of any update in the open epoch (the epoch seal
    /// must cover it).
    cur_epoch_max_done: Cycle,
    /// Running max of sealed-epoch completions.
    last_seal: Option<Cycle>,
    /// Last write per BMT node: `(epoch, completion)` — the WAW-hazard
    /// tracker (same-epoch rewrites are WAW-safe, cross-epoch ones must
    /// not reorder).
    node_last: LabelMap,
    summary: SanitizerSummary,
}

impl Sanitizer {
    /// A fresh sanitizer holding `scheme` to its contract over a tree
    /// of `geometry`'s depth.
    pub fn new(scheme: UpdateScheme, geometry: BmtGeometry) -> Self {
        let levels = geometry.levels();
        let n = geometry.levels_usize();
        Sanitizer {
            scheme,
            contract: SchemeContract::for_scheme(scheme),
            levels,
            level_last: vec![Cycle::ZERO; n],
            last_tuple_completion: Cycle::ZERO,
            walk_seen: vec![0; n],
            observed_floor: None,
            sealed_level_last: vec![Cycle::ZERO; n],
            cur_level_max: vec![Cycle::ZERO; n],
            cur_epoch_max_done: Cycle::ZERO,
            last_seal: None,
            node_last: LabelMap::default(),
            summary: SanitizerSummary::default(),
        }
    }

    /// The contract this sanitizer enforces.
    pub fn contract(&self) -> SchemeContract {
        self.contract
    }

    /// Whether the engine tap should record node updates at all (false
    /// for the contract-free `unordered` strawman).
    pub fn wants_node_events(&self) -> bool {
        self.contract.strict_walk || self.contract.epoch_order || self.contract.truncated_walk
    }

    fn report(&mut self, v: Violation) {
        if self.summary.violations.len() < MAX_DETAILED_VIOLATIONS {
            self.summary.violations.push(v);
        } else {
            self.summary.dropped_violations += 1;
        }
    }

    fn node_violation(
        &mut self,
        kind: ViolationKind,
        epoch: EpochId,
        persist: u64,
        ev: &NodeUpdateEvent,
    ) {
        let v = Violation {
            kind,
            scheme: self.scheme,
            cycle: ev.done,
            epoch,
            persist,
            level: ev.level,
            node: ev.label.raw(),
            addr: NO_FIELD,
        };
        self.report(v);
    }

    /// Checks the node updates one engine `persist` call scheduled.
    ///
    /// Strict contract: the walk must cover every level exactly once
    /// (Invariant 2's full leaf-to-root path), complete leaf-to-root
    /// monotonically, and never regress a level's completion across
    /// persists. Epoch contract: each update is checked against the
    /// sealed epochs' level frontier and the WAW tracker.
    pub fn observe_walk(&mut self, persist: PersistId, epoch: EpochId, events: &[NodeUpdateEvent]) {
        if self.contract.strict_walk {
            self.summary.checked_node_updates += events.len() as u64;
            self.strict_walk_checks(persist, epoch, events);
        } else if self.contract.truncated_walk {
            self.summary.checked_node_updates += events.len() as u64;
            self.truncated_walk_checks(persist, epoch, events);
        } else if self.contract.epoch_order {
            self.summary.checked_node_updates += events.len() as u64;
            for ev in events {
                self.epoch_event_checks(epoch, persist.0, ev);
            }
        }
    }

    /// Checks node updates scheduled *outside* any one persist — the
    /// seal-time walks a coalescing carrier performs. Epoch contract
    /// only; the events carry no persist attribution.
    pub fn observe_epoch_tail(&mut self, epoch: EpochId, events: &[NodeUpdateEvent]) {
        if self.contract.epoch_order {
            self.summary.checked_node_updates += events.len() as u64;
            for ev in events {
                self.epoch_event_checks(epoch, NO_FIELD, ev);
            }
        }
    }

    fn strict_walk_checks(&mut self, persist: PersistId, epoch: EpochId, events: &[NodeUpdateEvent]) {
        // Shape: every level 1..=levels updated exactly once.
        self.walk_seen.fill(0);
        let mut shape_ok = true;
        for ev in events {
            match level_index(ev.level, self.levels).and_then(|i| self.walk_seen.get_mut(i)) {
                Some(count) => *count = count.saturating_add(1),
                None => {
                    shape_ok = false;
                    self.node_violation(ViolationKind::SkippedLevel, epoch, persist.0, ev);
                }
            }
        }
        if let Some(i) = self.walk_seen.iter().position(|&c| c != 1) {
            shape_ok = false;
            let v = Violation {
                kind: ViolationKind::SkippedLevel,
                scheme: self.scheme,
                cycle: events.iter().map(|e| e.done).max().unwrap_or(Cycle::ZERO),
                epoch,
                persist: persist.0,
                level: u32::try_from(i + 1).unwrap_or(u32::MAX),
                node: NO_FIELD,
                addr: NO_FIELD,
            };
            self.report(v);
        }
        // Leaf-to-root monotonicity: within the walk, a deeper level
        // completes no later than a shallower one. Only meaningful when
        // the shape is right (each level present exactly once).
        if shape_ok {
            let mut prev_done = Cycle::ZERO;
            for level in (1..=self.levels).rev() {
                if let Some(ev) = events.iter().find(|e| e.level == level) {
                    if ev.done < prev_done {
                        self.node_violation(ViolationKind::LevelOrder, epoch, persist.0, ev);
                    }
                    prev_done = prev_done.max(ev.done);
                }
            }
        }
        // Cross-persist per-level order: a level's completions never
        // regress between persists.
        for ev in events {
            let Some(i) = level_index(ev.level, self.levels) else {
                continue;
            };
            if ev.done < self.level_last[i] {
                self.node_violation(ViolationKind::LevelOrder, epoch, persist.0, ev);
            }
            self.level_last[i] = self.level_last[i].max(ev.done);
        }
    }

    /// The truncated (`triad_nvm`) form of the walk checks: each walk
    /// must cover a contiguous suffix of levels ending at the leaf,
    /// exactly once per covered level ([`ViolationKind::SkippedLevel`]
    /// on gaps, duplicates or a floor that moves between persists), and
    /// both the within-walk deepest-first monotonicity and the
    /// cross-persist per-level order of the strict contract hold over
    /// the covered slice ([`ViolationKind::LevelOrder`]).
    fn truncated_walk_checks(
        &mut self,
        persist: PersistId,
        epoch: EpochId,
        events: &[NodeUpdateEvent],
    ) {
        // Shape: a contiguous suffix floor..=levels, each level once.
        self.walk_seen.fill(0);
        let mut shape_ok = true;
        let mut floor = self.levels + 1; // empty walk sentinel
        for ev in events {
            match level_index(ev.level, self.levels).and_then(|i| self.walk_seen.get_mut(i)) {
                Some(count) => {
                    *count = count.saturating_add(1);
                    floor = floor.min(ev.level);
                }
                None => {
                    shape_ok = false;
                    self.node_violation(ViolationKind::SkippedLevel, epoch, persist.0, ev);
                }
            }
        }
        let walk_max = events.iter().map(|e| e.done).max().unwrap_or(Cycle::ZERO);
        let shape_violation = |this: &mut Self, level: u32| {
            let v = Violation {
                kind: ViolationKind::SkippedLevel,
                scheme: this.scheme,
                cycle: walk_max,
                epoch,
                persist: persist.0,
                level,
                node: NO_FIELD,
                addr: NO_FIELD,
            };
            this.report(v);
        };
        // The leaf level anchors the suffix: a walk that never touches
        // the leaf (or touches nothing) skipped the one level no
        // relaxation may drop.
        if floor > self.levels || self.walk_seen[self.levels as usize - 1] == 0 {
            shape_violation(self, self.levels);
            return;
        }
        for level in floor..=self.levels {
            let Some(i) = level_index(level, self.levels) else {
                continue;
            };
            if self.walk_seen[i] != 1 {
                shape_ok = false;
                shape_violation(self, level);
            }
        }
        // The floor is a configuration constant, not a per-persist
        // choice: a walk persisting a different suffix than the first
        // walk's breaks the contract even if internally well-formed.
        match self.observed_floor {
            None => self.observed_floor = Some(floor),
            Some(expected) if expected != floor => {
                shape_ok = false;
                shape_violation(self, floor);
            }
            Some(_) => {}
        }
        // Deepest-first monotone completion over the covered slice.
        if shape_ok {
            let mut prev_done = Cycle::ZERO;
            for level in (floor..=self.levels).rev() {
                if let Some(ev) = events.iter().find(|e| e.level == level) {
                    if ev.done < prev_done {
                        self.node_violation(ViolationKind::LevelOrder, epoch, persist.0, ev);
                    }
                    prev_done = prev_done.max(ev.done);
                }
            }
        }
        // Cross-persist per-level order over the covered slice.
        for ev in events {
            let Some(i) = level_index(ev.level, self.levels) else {
                continue;
            };
            if ev.done < self.level_last[i] {
                self.node_violation(ViolationKind::LevelOrder, epoch, persist.0, ev);
            }
            self.level_last[i] = self.level_last[i].max(ev.done);
        }
    }

    fn epoch_event_checks(&mut self, epoch: EpochId, persist: u64, ev: &NodeUpdateEvent) {
        let Some(i) = level_index(ev.level, self.levels) else {
            self.node_violation(ViolationKind::SkippedLevel, epoch, persist, ev);
            return;
        };
        // The ETT handoff: no update of the open epoch may complete
        // before every sealed epoch's last update of that level.
        if ev.done < self.sealed_level_last[i] {
            self.node_violation(ViolationKind::EpochLevelOrder, epoch, persist, ev);
        }
        self.cur_level_max[i] = self.cur_level_max[i].max(ev.done);
        self.cur_epoch_max_done = self.cur_epoch_max_done.max(ev.done);
        // WAW tracking: same-epoch rewrites of a node are WAW-safe
        // (§IV-B1's lemma); a cross-epoch write must not complete
        // before the older epoch's last write of the same node.
        let mut hazard = false;
        match self.node_last.get_mut(&ev.label.raw()) {
            Some((last_epoch, last_done)) if *last_epoch == epoch => {
                *last_done = (*last_done).max(ev.done);
            }
            Some((last_epoch, last_done)) => {
                hazard = ev.done < *last_done;
                *last_epoch = epoch;
                *last_done = ev.done;
            }
            None => {
                self.node_last.insert(ev.label.raw(), (epoch, ev.done));
            }
        }
        if hazard {
            self.node_violation(ViolationKind::WawHazard, epoch, persist, ev);
        }
    }

    /// Checks one persist retirement: tuple completeness (Invariant 1)
    /// and, for strict schemes, whole-tuple persist order (Invariant 2
    /// at the root).
    pub fn observe_persist(&mut self, ev: &PersistEvent) {
        if !self.contract.atomic_tuple {
            return;
        }
        self.summary.checked_persists += 1;
        let t = ev.times;
        let complete = t.complete();
        if t.data != complete || t.counter != complete || t.mac != complete || t.root != complete {
            let v = Violation {
                kind: ViolationKind::TupleIncomplete,
                scheme: self.scheme,
                cycle: complete,
                epoch: ev.epoch,
                persist: ev.id.0,
                level: 0,
                node: NO_FIELD,
                addr: ev.addr.index(),
            };
            self.report(v);
        }
        if self.contract.strict_walk {
            if complete < self.last_tuple_completion {
                let v = Violation {
                    kind: ViolationKind::RootOrder,
                    scheme: self.scheme,
                    cycle: complete,
                    epoch: ev.epoch,
                    persist: ev.id.0,
                    level: 0,
                    node: NO_FIELD,
                    addr: ev.addr.index(),
                };
                self.report(v);
            }
            self.last_tuple_completion = self.last_tuple_completion.max(complete);
        }
    }

    /// Checks one epoch seal: the reported completion must cover every
    /// update the epoch scheduled (Invariant 1 at epoch granularity)
    /// and sealed epochs must complete in order (Invariant 2 across
    /// epochs). Folds the epoch's level maxima into the sealed
    /// frontier.
    pub fn observe_seal(&mut self, epoch: EpochId, completion: Cycle) {
        if !self.contract.epoch_order {
            return;
        }
        self.summary.checked_epochs += 1;
        if completion < self.cur_epoch_max_done {
            let v = Violation {
                kind: ViolationKind::TupleIncomplete,
                scheme: self.scheme,
                cycle: completion,
                epoch,
                persist: NO_FIELD,
                level: 0,
                node: NO_FIELD,
                addr: NO_FIELD,
            };
            self.report(v);
        }
        if let Some(last) = self.last_seal {
            if completion < last {
                let v = Violation {
                    kind: ViolationKind::EpochCompletionOrder,
                    scheme: self.scheme,
                    cycle: completion,
                    epoch,
                    persist: NO_FIELD,
                    level: 0,
                    node: NO_FIELD,
                    addr: NO_FIELD,
                };
                self.report(v);
            }
        }
        for (sealed, cur) in self.sealed_level_last.iter_mut().zip(&mut self.cur_level_max) {
            *sealed = (*sealed).max(*cur);
            *cur = Cycle::ZERO;
        }
        self.cur_epoch_max_done = Cycle::ZERO;
        self.last_seal = Some(self.last_seal.unwrap_or(Cycle::ZERO).max(completion));
    }

    /// Consumes the sanitizer and returns the run's verdict.
    pub fn finish(self) -> SanitizerSummary {
        self.summary
    }
}

/// The WAW tracker does one map operation per node update, which puts
/// the default SipHash hasher on the simulator's hot path; node labels
/// are already well-mixed `u64`s, so the shared Fibonacci-multiply
/// hasher suffices and keeps the sanitizer's overhead in budget.
type LabelMap = crate::fastmap::FastMap<u64, (EpochId, Cycle)>;

/// 1-based tree level → vector index, `None` when out of range.
fn level_index(level: u32, levels: u32) -> Option<usize> {
    if level >= 1 && level <= levels {
        Some(level as usize - 1)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TupleTimes;
    use plp_bmt::NodeLabel;
    use plp_events::addr::BlockAddr;

    fn geom() -> BmtGeometry {
        BmtGeometry::new(8, 4)
    }

    fn walk(geometry: BmtGeometry, page: u64, start: u64, step: u64) -> Vec<NodeUpdateEvent> {
        let mut t = start;
        geometry
            .update_path(geometry.leaf(page))
            .into_iter()
            .map(|label| {
                t += step;
                NodeUpdateEvent {
                    label,
                    level: geometry.level(label),
                    done: Cycle::new(t),
                }
            })
            .collect()
    }

    fn persist_event(id: u64, times: TupleTimes) -> PersistEvent {
        PersistEvent {
            id: PersistId(id),
            epoch: EpochId(0),
            addr: BlockAddr::new(id),
            ordered: true,
            times,
        }
    }

    #[test]
    fn clean_strict_run_has_no_violations() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::Sp, g);
        assert!(s.wants_node_events());
        for i in 0..5 {
            let events = walk(g, i, i * 160, 40);
            s.observe_walk(PersistId(i), EpochId(0), &events);
            s.observe_persist(&persist_event(i, TupleTimes::atomic(Cycle::new((i + 1) * 160))));
        }
        let sum = s.finish();
        assert!(sum.is_clean(), "{:?}", sum.violations);
        assert_eq!(sum.checked_persists, 5);
        assert_eq!(sum.checked_node_updates, 20);
    }

    #[test]
    fn incomplete_tuple_is_flagged() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::Sp, g);
        let times = TupleTimes {
            data: Cycle::new(100),
            counter: Cycle::new(100),
            mac: Cycle::new(90), // the corrupted component
            root: Cycle::new(100),
        };
        s.observe_persist(&persist_event(1, times));
        let sum = s.finish();
        assert_eq!(sum.count_of(ViolationKind::TupleIncomplete), 1);
        assert_eq!(sum.violations[0].addr, 1);
    }

    #[test]
    fn tuple_retiring_early_breaks_root_order() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::Pipeline, g);
        s.observe_persist(&persist_event(1, TupleTimes::atomic(Cycle::new(200))));
        s.observe_persist(&persist_event(2, TupleTimes::atomic(Cycle::new(150))));
        let sum = s.finish();
        assert_eq!(sum.count_of(ViolationKind::RootOrder), 1);
    }

    #[test]
    fn skipped_level_is_flagged() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::Sp, g);
        let mut events = walk(g, 0, 0, 40);
        events.remove(1); // drop the level-3 update
        s.observe_walk(PersistId(1), EpochId(0), &events);
        let sum = s.finish();
        assert_eq!(sum.count_of(ViolationKind::SkippedLevel), 1);
        assert_eq!(sum.violations[0].level, 3);
    }

    #[test]
    fn root_first_walk_breaks_level_order() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::Sp, g);
        let mut events = walk(g, 0, 0, 40);
        events.reverse(); // same labels, but completions run root-first
        for (i, ev) in events.iter_mut().enumerate() {
            ev.done = Cycle::new((i as u64 + 1) * 40);
        }
        s.observe_walk(PersistId(1), EpochId(0), &events);
        let sum = s.finish();
        assert!(sum.count_of(ViolationKind::LevelOrder) >= 1, "{:?}", sum.violations);
    }

    #[test]
    fn per_level_regression_across_persists_is_flagged() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::Pipeline, g);
        s.observe_walk(PersistId(1), EpochId(0), &walk(g, 0, 1_000, 40));
        // A later persist whose whole walk completed earlier.
        s.observe_walk(PersistId(2), EpochId(0), &walk(g, 9, 0, 40));
        let sum = s.finish();
        assert!(sum.count_of(ViolationKind::LevelOrder) >= 1);
    }

    #[test]
    fn epoch_level_handoff_violation_is_flagged() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::O3, g);
        s.observe_walk(PersistId(1), EpochId(0), &walk(g, 0, 0, 100));
        s.observe_seal(EpochId(0), Cycle::new(400));
        // Epoch 1 touches the root (done 160) before epoch 0's root
        // update (done 400).
        s.observe_walk(PersistId(2), EpochId(1), &walk(g, 9, 0, 40));
        let sum = s.finish();
        assert!(sum.count_of(ViolationKind::EpochLevelOrder) >= 1);
        assert_eq!(sum.checked_epochs, 1);
    }

    #[test]
    fn cross_epoch_waw_on_same_node_is_flagged() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::Coalescing, g);
        let root_write = |done: u64| NodeUpdateEvent {
            label: NodeLabel::ROOT,
            level: 1,
            done: Cycle::new(done),
        };
        // Same-epoch out-of-order rewrites are WAW-safe: no violation.
        s.observe_walk(PersistId(1), EpochId(0), &[root_write(300)]);
        s.observe_walk(PersistId(2), EpochId(0), &[root_write(200)]);
        assert_eq!(s.summary.count_of(ViolationKind::WawHazard), 0);
        s.observe_seal(EpochId(0), Cycle::new(300));
        // A cross-epoch write completing before epoch 0's last root
        // write is the hazard.
        s.observe_epoch_tail(EpochId(1), &[root_write(250)]);
        let sum = s.finish();
        assert_eq!(sum.count_of(ViolationKind::WawHazard), 1);
        // It also violates the level handoff, by construction.
        assert!(sum.count_of(ViolationKind::EpochLevelOrder) >= 1);
    }

    #[test]
    fn regressing_seal_completion_is_flagged() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::O3, g);
        s.observe_seal(EpochId(0), Cycle::new(500));
        s.observe_seal(EpochId(1), Cycle::new(400));
        let sum = s.finish();
        assert_eq!(sum.count_of(ViolationKind::EpochCompletionOrder), 1);
    }

    #[test]
    fn seal_must_cover_epoch_updates() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::O3, g);
        s.observe_walk(PersistId(1), EpochId(0), &walk(g, 0, 0, 100));
        // Last update done at 400; a seal claiming 300 under-reports.
        s.observe_seal(EpochId(0), Cycle::new(300));
        let sum = s.finish();
        assert_eq!(sum.count_of(ViolationKind::TupleIncomplete), 1);
    }

    /// A well-formed truncated walk: the suffix `floor..=levels`,
    /// deepest first, completing monotonically.
    fn truncated(g: BmtGeometry, page: u64, floor: u32, start: u64, step: u64) -> Vec<NodeUpdateEvent> {
        walk(g, page, start, step)
            .into_iter()
            .filter(|ev| ev.level >= floor)
            .collect()
    }

    #[test]
    fn clean_truncated_run_has_no_violations() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::TriadNvm, g);
        assert!(s.wants_node_events());
        for i in 0..5 {
            let events = truncated(g, i, 3, i * 80, 40);
            assert_eq!(events.len(), 2, "suffix covers levels 3..=4");
            s.observe_walk(PersistId(i), EpochId(0), &events);
        }
        let sum = s.finish();
        assert!(sum.is_clean(), "{:?}", sum.violations);
        assert_eq!(sum.checked_node_updates, 10);
        // The non-atomic tuple is *not* checked: the lazy MAC/root lag
        // is the scheme's design, not a violation.
        assert_eq!(sum.checked_persists, 0);
    }

    #[test]
    fn truncated_walk_missing_the_leaf_is_flagged() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::TriadNvm, g);
        // Levels 2..=3 only: a "suffix" that dropped the leaf.
        let events: Vec<_> = walk(g, 0, 0, 40)
            .into_iter()
            .filter(|ev| ev.level == 2 || ev.level == 3)
            .collect();
        s.observe_walk(PersistId(1), EpochId(0), &events);
        let sum = s.finish();
        assert_eq!(sum.count_of(ViolationKind::SkippedLevel), 1);
        assert_eq!(sum.violations[0].level, 4);
    }

    #[test]
    fn truncated_walk_with_a_gap_is_flagged() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::TriadNvm, g);
        // Levels {2, 4}: touches the leaf but skips level 3 inside the
        // claimed suffix.
        let events: Vec<_> = walk(g, 0, 0, 40)
            .into_iter()
            .filter(|ev| ev.level == 2 || ev.level == 4)
            .collect();
        s.observe_walk(PersistId(1), EpochId(0), &events);
        let sum = s.finish();
        assert_eq!(sum.count_of(ViolationKind::SkippedLevel), 1);
        assert_eq!(sum.violations[0].level, 3);
    }

    #[test]
    fn truncated_floor_must_not_move_between_persists() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::TriadNvm, g);
        s.observe_walk(PersistId(1), EpochId(0), &truncated(g, 0, 3, 0, 40));
        // The next persist suddenly persists three levels instead of
        // two — internally well-formed, but the floor moved.
        s.observe_walk(PersistId(2), EpochId(0), &truncated(g, 1, 2, 200, 40));
        let sum = s.finish();
        assert_eq!(sum.count_of(ViolationKind::SkippedLevel), 1);
        assert_eq!(sum.violations[0].level, 2);
    }

    #[test]
    fn truncated_slice_keeps_strict_order_checks() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::TriadNvm, g);
        // Within-walk: shallower level completes before the deeper one.
        let mut events = truncated(g, 0, 3, 0, 40);
        events[0].done = Cycle::new(200); // leaf late
        events[1].done = Cycle::new(100); // level 3 early
        s.observe_walk(PersistId(1), EpochId(0), &events);
        assert_eq!(s.summary.count_of(ViolationKind::LevelOrder), 1);
        // Cross-persist: a later persist's slice regresses level 4.
        s.observe_walk(PersistId(2), EpochId(0), &truncated(g, 1, 3, 0, 40));
        let sum = s.finish();
        assert!(sum.count_of(ViolationKind::LevelOrder) >= 2, "{:?}", sum.violations);
    }

    #[test]
    fn unordered_contract_checks_nothing() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::Unordered, g);
        assert!(!s.wants_node_events());
        let times = TupleTimes {
            data: Cycle::new(1),
            counter: Cycle::new(2),
            mac: Cycle::new(3),
            root: Cycle::new(4),
        };
        s.observe_persist(&persist_event(1, times));
        s.observe_walk(PersistId(2), EpochId(0), &walk(g, 0, 0, 40));
        let sum = s.finish();
        assert!(sum.is_clean());
        assert_eq!(sum.checked_persists, 0);
        assert_eq!(sum.checked_node_updates, 0);
    }

    #[test]
    fn violation_flood_is_capped_not_unbounded() {
        let g = geom();
        let mut s = Sanitizer::new(UpdateScheme::Pipeline, g);
        for i in 0..(MAX_DETAILED_VIOLATIONS as u64 + 10) {
            // Every tuple retires before its predecessor.
            s.observe_persist(&persist_event(i, TupleTimes::atomic(Cycle::new(1_000_000 - i))));
        }
        let sum = s.finish();
        assert_eq!(sum.violations.len(), MAX_DETAILED_VIOLATIONS);
        assert_eq!(sum.dropped_violations, 9);
        assert_eq!(sum.total_violations(), MAX_DETAILED_VIOLATIONS as u64 + 9);
    }
}
