//! The Intel SGX counter-tree cost model (§V-D).
//!
//! SGX's integrity tree is a *counter tree*: computing a child's MAC
//! requires the parent counter's value, so — unlike a Bonsai Merkle
//! Tree, where only the root must persist — crash recovery requires
//! persisting **every node on the update path**, leaf to root.
//! Invariants 1 and 2 therefore expand to cover the whole path, and
//! the number of NVM persists per store scales with the tree height.
//!
//! The paper stops at this observation ("we focus only on BMT due to
//! the extra cost incurred by the counter tree"); this module makes
//! the comparison quantitative so the design choice is reproducible.

use plp_bmt::BmtGeometry;
use serde::{Deserialize, Serialize};

/// Per-persist cost comparison between a BMT and an SGX-style counter
/// tree of the same shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreePersistCost {
    /// MAC computations on the update path (equal for both trees).
    pub path_updates: u64,
    /// 64-byte NVM persists required for crash recovery.
    pub nvm_persists: u64,
}

/// Cost of one persist under a Bonsai Merkle Tree: the whole path is
/// *updated*, but only the leaf's counter block (and the data/MAC
/// blocks, counted by the caller) must persist — the root lives in an
/// on-chip persistent register and interior nodes are reconstructible.
pub fn bmt_persist_cost(geometry: BmtGeometry) -> TreePersistCost {
    TreePersistCost {
        path_updates: geometry.levels() as u64,
        nvm_persists: 1,
    }
}

/// Cost of one persist under an SGX-style counter tree: every node on
/// the update path must persist for the post-crash MAC chain to
/// verify.
pub fn sgx_persist_cost(geometry: BmtGeometry) -> TreePersistCost {
    TreePersistCost {
        path_updates: geometry.levels() as u64,
        nvm_persists: geometry.levels() as u64,
    }
}

/// The write-amplification factor of the SGX counter tree relative to
/// a BMT of the same shape — how many times more NVM persists each
/// store needs.
pub fn sgx_write_amplification(geometry: BmtGeometry) -> f64 {
    sgx_persist_cost(geometry).nvm_persists as f64 / bmt_persist_cost(geometry).nvm_persists as f64
}

/// Estimated cycles to drain one persist's tree-related NVM writes,
/// given a per-write occupancy (e.g. tWR at the CPU clock). With a
/// BMT this is one write; with the counter tree the writes serialize
/// on the same update path ordering (shadow copies would be needed to
/// overlap them, §V-D).
pub fn persist_drain_cycles(cost: TreePersistCost, write_cycles: u64) -> u64 {
    cost.nvm_persists * write_cycles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_amplification_is_nine() {
        let g = BmtGeometry::new(8, 9);
        assert_eq!(bmt_persist_cost(g).nvm_persists, 1);
        assert_eq!(sgx_persist_cost(g).nvm_persists, 9);
        assert!((sgx_write_amplification(g) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn update_work_is_identical() {
        let g = BmtGeometry::new(8, 9);
        assert_eq!(
            bmt_persist_cost(g).path_updates,
            sgx_persist_cost(g).path_updates
        );
    }

    #[test]
    fn drain_cycles_scale_with_height() {
        let g = BmtGeometry::new(8, 9);
        // 600 cycles per NVM write (150 ns at 4 GHz).
        assert_eq!(persist_drain_cycles(bmt_persist_cost(g), 600), 600);
        assert_eq!(persist_drain_cycles(sgx_persist_cost(g), 600), 5400);
    }

    #[test]
    fn amplification_grows_with_memory() {
        let small = BmtGeometry::for_memory(1 << 30, 8);
        let large = BmtGeometry::for_memory(1 << 40, 8);
        assert!(sgx_write_amplification(large) > sgx_write_amplification(small));
    }
}
