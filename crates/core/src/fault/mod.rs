//! Fault injection and active recovery.
//!
//! Three layers on top of the passive crash machinery in
//! [`crate::recovery`]:
//!
//! * [`FaultInjector`] — a deterministic fault model at the NVM-medium
//!   boundary: torn 64-byte line writes (per-8-byte-word granularity),
//!   targeted bit flips in the data/MAC/counter/root regions and
//!   dropped already-acknowledged WPQ entries. Every fault is a pure
//!   function of the seed, so failing states replay exactly.
//! * [`enumerate_crash_points`] / [`FaultSweep`] — a
//!   CrashMonkey/ALICE-style crash-point enumerator that derives the
//!   distinct durable states from recorded
//!   [`TupleTimes`](crate::TupleTimes) and sweeps recovery across all
//!   of them (budgeted, deterministically sampled), aggregating a
//!   Table I / Table II failure taxonomy per scheme.
//! * [`RecoveryManager`] — upgrades the
//!   [`RecoveryChecker`](crate::RecoveryChecker) from *classify* to
//!   *repair*: recompute the BMT from persisted counters, adopt the
//!   rebuilt root when the persisted root matches a recoverable
//!   prefix, quarantine blocks whose MAC cannot re-verify, and report
//!   salvaged-versus-lost counts plus a modeled recovery time.
//!
//! The verdict vocabulary is deliberately honest about what secure
//! recovery can and cannot promise: torn writes and bit flips are
//! always *detected* by a correct (atomic-tuple) engine because the
//! stateful MAC binds `(C, A, γ)` and the BMT binds the counters — but
//! a dropped, previously-acknowledged persist can silently resurrect
//! an older *authentic* tuple, which no integrity check can
//! distinguish from the truth ([`FaultVerdict::StaleRollback`]). The
//! ADR flush domain is the trust anchor; the sweep quantifies exactly
//! that boundary.

mod inject;
mod manager;
mod sweep;

use plp_events::addr::BlockAddr;
use serde::{Deserialize, Serialize};

use crate::{PersistId, TupleComponent};

pub use inject::FaultInjector;
pub use manager::{RebuildStrategy, RecoveryError, RecoveryManager, RecoveryOutcome, RootStatus};
pub use sweep::{enumerate_crash_points, ClassTally, FaultOutcome, FaultSweep, SchemeRobustness};

/// One splitmix64 step — the deterministic randomness source of the
/// whole fault subsystem (no external RNG dependency, identical
/// streams on every platform).
pub(crate) fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws a value in `0..bound` from the stream.
pub(crate) fn splitmix_below(state: &mut u64, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    splitmix_next(state) % bound
}

/// The fault classes the injector models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// A 64-byte line write applied partially: some 8-byte words carry
    /// the new content, the rest still hold the previous content.
    TornWrite,
    /// A single bit flipped in a persisted data block, MAC tag,
    /// counter block or the root register.
    BitFlip,
    /// An already-completed (acknowledged) WPQ entry that never
    /// reached the medium — the ADR promise broken.
    DroppedPersist,
}

impl FaultClass {
    /// All fault classes.
    pub const ALL: [FaultClass; 3] = [
        FaultClass::TornWrite,
        FaultClass::BitFlip,
        FaultClass::DroppedPersist,
    ];

    /// A short, stable name for tables.
    pub fn name(self) -> &'static str {
        match self {
            FaultClass::TornWrite => "torn",
            FaultClass::BitFlip => "bitflip",
            FaultClass::DroppedPersist => "drop",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the injector actually did — enough detail to reproduce the
/// fault by hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// A torn line write against one tuple component.
    TornWrite {
        /// Which component's line was torn.
        component: TupleComponent,
        /// The victim block (for data/MAC tears) or the first block of
        /// the victim page (for counter tears).
        addr: BlockAddr,
        /// Bitmask of 8-byte words that kept the *old* content.
        kept_old_words: u16,
    },
    /// A single-bit flip against one tuple component.
    BitFlip {
        /// Which component was hit.
        component: TupleComponent,
        /// The victim block (data/MAC flips) or first block of the
        /// victim page (counter flips); the root register for root
        /// flips.
        addr: BlockAddr,
        /// Which bit flipped, within the component's encoding.
        bit: u32,
    },
    /// A completed persist whose tuple never reached the medium.
    DroppedPersist {
        /// The dropped persist.
        id: PersistId,
        /// Its data block.
        addr: BlockAddr,
    },
}

impl FaultSpec {
    /// The class this concrete fault belongs to.
    pub fn class(&self) -> FaultClass {
        match self {
            FaultSpec::TornWrite { .. } => FaultClass::TornWrite,
            FaultSpec::BitFlip { .. } => FaultClass::BitFlip,
            FaultSpec::DroppedPersist { .. } => FaultClass::DroppedPersist,
        }
    }
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultSpec::TornWrite {
                component,
                addr,
                kept_old_words,
            } => write!(
                f,
                "torn {component:?} line at {addr} (old-word mask {kept_old_words:#x})"
            ),
            FaultSpec::BitFlip {
                component,
                addr,
                bit,
            } => write!(f, "bit {bit} flipped in {component:?} at {addr}"),
            FaultSpec::DroppedPersist { id, addr } => {
                write!(f, "acknowledged persist {id} to {addr} dropped")
            }
        }
    }
}

/// Which fault classes a sweep injects, and how hard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Inject torn line writes.
    pub torn_writes: bool,
    /// Inject single-bit flips.
    pub bit_flips: bool,
    /// Drop acknowledged persists.
    pub dropped_persists: bool,
    /// Faults injected per crash point per enabled class.
    pub faults_per_point: usize,
    /// Maximum number of crash points per scheme (the enumerator
    /// samples deterministically above this).
    pub crash_point_budget: usize,
    /// Seed of every random choice the sweep makes.
    pub seed: u64,
}

impl FaultConfig {
    /// The acceptance configuration: torn writes and bit flips — the
    /// classes a correct engine must always *detect* — over at least
    /// 100 crash points.
    pub fn acceptance(seed: u64) -> Self {
        FaultConfig {
            torn_writes: true,
            bit_flips: true,
            dropped_persists: false,
            faults_per_point: 2,
            crash_point_budget: 128,
            seed,
        }
    }

    /// Every fault class, including the dropped-persist class whose
    /// stale-rollback outcomes are fundamental (reported separately).
    pub fn all_classes(seed: u64) -> Self {
        FaultConfig {
            dropped_persists: true,
            ..FaultConfig::acceptance(seed)
        }
    }

    /// The enabled classes, in reporting order.
    pub fn enabled_classes(&self) -> Vec<FaultClass> {
        let mut out = Vec::new();
        if self.torn_writes {
            out.push(FaultClass::TornWrite);
        }
        if self.bit_flips {
            out.push(FaultClass::BitFlip);
        }
        if self.dropped_persists {
            out.push(FaultClass::DroppedPersist);
        }
        out
    }
}

/// The per-block outcome of a recovery pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockFate {
    /// MAC verified and the plaintext matches the observer's
    /// expectation.
    Salvaged,
    /// The MAC could not re-verify: the block is detected as damaged
    /// and fenced off.
    Quarantined,
    /// The MAC verified but the plaintext is an *older* legitimate
    /// version — an authentic rollback the integrity machinery cannot
    /// flag.
    StaleAuthentic,
    /// The MAC verified yet the plaintext matches no version the
    /// program ever wrote — undetected corruption, the worst case.
    SilentGarbage,
}

/// The overall verdict of one recovery attempt, ordered from best to
/// worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultVerdict {
    /// Everything verified and matched; no repair needed.
    Clean,
    /// Repair actions ran (root re-adopted) and every block was
    /// salvaged.
    Repaired,
    /// Some blocks were quarantined: data was lost but the loss is
    /// *known* — the secure-recovery contract held.
    DetectedLoss,
    /// Recovery silently accepted an older authentic state
    /// (fundamental under dropped-acknowledgement faults).
    StaleRollback,
    /// Recovery accepted data the program never wrote — an integrity
    /// failure.
    UndetectedCorruption,
}

impl FaultVerdict {
    /// Whether the outcome violates the detect-or-recover contract
    /// (the state is wrong and nothing flagged it).
    pub fn is_undetected(self) -> bool {
        matches!(
            self,
            FaultVerdict::StaleRollback | FaultVerdict::UndetectedCorruption
        )
    }

    /// A short, stable name for tables.
    pub fn name(self) -> &'static str {
        match self {
            FaultVerdict::Clean => "clean",
            FaultVerdict::Repaired => "repaired",
            FaultVerdict::DetectedLoss => "detected-loss",
            FaultVerdict::StaleRollback => "stale-rollback",
            FaultVerdict::UndetectedCorruption => "undetected",
        }
    }
}

impl std::fmt::Display for FaultVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        let mut a = 7u64;
        let mut b = 7u64;
        let xs: Vec<u64> = (0..8).map(|_| splitmix_next(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| splitmix_next(&mut b)).collect();
        assert_eq!(xs, ys);
        let mut sorted = xs.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len(), "stream repeated immediately");
        for _ in 0..100 {
            assert!(splitmix_below(&mut a, 10) < 10);
        }
    }

    #[test]
    fn config_presets() {
        let acc = FaultConfig::acceptance(1);
        assert_eq!(
            acc.enabled_classes(),
            vec![FaultClass::TornWrite, FaultClass::BitFlip]
        );
        assert!(acc.crash_point_budget >= 100);
        let all = FaultConfig::all_classes(1);
        assert_eq!(all.enabled_classes().len(), 3);
    }

    #[test]
    fn verdict_taxonomy() {
        assert!(!FaultVerdict::Clean.is_undetected());
        assert!(!FaultVerdict::DetectedLoss.is_undetected());
        assert!(FaultVerdict::StaleRollback.is_undetected());
        assert!(FaultVerdict::UndetectedCorruption.is_undetected());
        assert!(FaultVerdict::Clean < FaultVerdict::UndetectedCorruption);
        assert_eq!(FaultVerdict::DetectedLoss.to_string(), "detected-loss");
    }

    #[test]
    fn spec_display_and_class() {
        let spec = FaultSpec::DroppedPersist {
            id: PersistId(3),
            addr: BlockAddr::new(8),
        };
        assert_eq!(spec.class(), FaultClass::DroppedPersist);
        assert!(spec.to_string().contains("δ3"));
        assert_eq!(FaultClass::TornWrite.to_string(), "torn");
    }
}
