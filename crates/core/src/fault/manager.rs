//! Active recovery: repair what can be repaired, quarantine what
//! cannot, and say honestly which one happened.
//!
//! The passive [`RecoveryChecker`](crate::RecoveryChecker) only
//! *classifies* a crash image against Tables I and II. The
//! [`RecoveryManager`] goes further, the way a real secure-memory
//! controller must after power returns:
//!
//! 1. rebuild the BMT from the persisted counters;
//! 2. if the persisted root disagrees, search the recorded root-update
//!    sequence for a prefix the persisted root matches — a match means
//!    the root merely *lagged* the counters (or vice versa) and the
//!    rebuilt root can be adopted; no match marks the root itself
//!    suspect (e.g. a flipped root bit), and the rebuilt root is still
//!    adopted because the per-block MACs — which bind the counters, not
//!    the root — arbitrate safety block by block;
//! 3. re-verify every expected block's stateful MAC: verified blocks
//!    whose plaintext matches are salvaged, failed MACs are quarantined
//!    (detected loss), verified-but-unexpected plaintexts are split
//!    into authentic-but-stale versions and silent garbage.

use std::collections::HashMap;

use plp_bmt::{BmtGeometry, BonsaiTree, NodeValue};
use plp_crypto::{CtrEngine, DataBlock, MacEngine, SipKey};
use plp_events::addr::BlockAddr;
use plp_events::Cycle;
use serde::{Deserialize, Serialize};

use crate::{
    ObserverExpectation, PersistImage, PersistRecord, RecoveryCost, SystemConfig, UpdateScheme,
};

use super::{BlockFate, FaultVerdict};

/// What the manager concluded about the persisted root register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RootStatus {
    /// The persisted root matches the root rebuilt from the persisted
    /// counters — nothing to repair.
    Intact,
    /// The persisted root matches a prefix of the recorded root-update
    /// sequence: root and counters got out of step across the crash,
    /// but both are legitimate states. The rebuilt root is adopted.
    Lagged {
        /// How many recorded root updates the persisted root is behind
        /// the full sequence (0 means the root is current and the
        /// *counters* rolled back).
        updates_behind: usize,
    },
    /// The persisted root matches no legitimate prefix — the register
    /// itself is damaged. The rebuilt root is adopted and the per-block
    /// MACs decide what survives.
    Suspect,
}

impl RootStatus {
    /// Whether the root needed repair at all.
    pub fn needed_repair(self) -> bool {
        !matches!(self, RootStatus::Intact)
    }
}

/// A typed recovery failure, attached to the outcome when the root
/// could not be matched to any legitimate state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryError {
    /// The persisted root is neither the rebuilt root nor any recorded
    /// prefix root.
    RootMismatch {
        /// What the medium held.
        persisted: NodeValue,
        /// What the counters hash to (and what was adopted).
        rebuilt: NodeValue,
    },
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::RootMismatch { persisted, rebuilt } => write!(
                f,
                "persisted root {persisted:#x} matches no recorded state; adopted rebuilt root {rebuilt:#x}"
            ),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// Everything one recovery attempt produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// What happened to the root register.
    pub root: RootStatus,
    /// The typed error when the root was unmatchable.
    pub root_error: Option<RecoveryError>,
    /// The root the recovered system continues with (always the one
    /// rebuilt from persisted counters).
    pub adopted_root: NodeValue,
    /// Per expected block, what recovery did with it (sorted by
    /// address).
    pub fates: Vec<(BlockAddr, BlockFate)>,
    /// Modeled recovery latency in cycles: counter fetch + the
    /// strategy's tree rebuild (which under [`RebuildStrategy::Full`]
    /// includes the root-prefix search) + MAC re-verification,
    /// pipelined.
    pub recovery_cycles: u64,
}

impl RecoveryOutcome {
    /// Blocks with the given fate.
    pub fn count(&self, fate: BlockFate) -> usize {
        self.fates.iter().filter(|(_, f)| *f == fate).count()
    }

    /// The addresses recovery fenced off as damaged.
    pub fn quarantined(&self) -> Vec<BlockAddr> {
        self.fates
            .iter()
            .filter(|(_, f)| *f == BlockFate::Quarantined)
            .map(|(a, _)| *a)
            .collect()
    }

    /// The single verdict for this attempt, worst evidence winning.
    pub fn verdict(&self) -> FaultVerdict {
        if self.count(BlockFate::SilentGarbage) > 0 {
            FaultVerdict::UndetectedCorruption
        } else if self.count(BlockFate::StaleAuthentic) > 0 {
            FaultVerdict::StaleRollback
        } else if self.count(BlockFate::Quarantined) > 0 {
            FaultVerdict::DetectedLoss
        } else if self.root.needed_repair() {
            FaultVerdict::Repaired
        } else {
            FaultVerdict::Clean
        }
    }
}

impl std::fmt::Display for RecoveryOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} salvaged, {} quarantined, {} stale, {} garbage (root {:?}, {} cycles)",
            self.verdict(),
            self.count(BlockFate::Salvaged),
            self.count(BlockFate::Quarantined),
            self.count(BlockFate::StaleAuthentic),
            self.count(BlockFate::SilentGarbage),
            self.root,
            self.recovery_cycles
        )
    }
}

/// How much of the BMT recovery must rebuild before service resumes —
/// the *recovery-time* axis of the runtime-vs-recovery Pareto
/// frontier. The functional repair (root triage + per-block MAC
/// arbitration) is identical under every strategy; what varies is the
/// modeled rebuild work, which is exactly what each scheme's extra
/// runtime persistence buys down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RebuildStrategy {
    /// Rebuild every populated node from the persisted counters — the
    /// paper's volatile-tree schemes, where only the root register and
    /// the counters survive a crash.
    Full,
    /// `triad_nvm`: levels `floor..=levels` were strictly persisted,
    /// so recovery rebuilds only the relaxed slice above the floor.
    Suffix {
        /// Shallowest strictly-persisted level (1 = root).
        floor: u32,
    },
    /// `phoenix`: every node and a dual-copy root are durable;
    /// recovery just cross-checks the two root copies — constant tree
    /// work regardless of protected-memory size.
    Shadow,
}

impl RebuildStrategy {
    /// The strategy `config`'s scheme earns through its runtime
    /// persistence.
    pub fn for_config(config: &SystemConfig) -> Self {
        match config.scheme {
            UpdateScheme::TriadNvm => RebuildStrategy::Suffix {
                floor: config.triad_floor(),
            },
            UpdateScheme::Phoenix => RebuildStrategy::Shadow,
            UpdateScheme::SecureWb
            | UpdateScheme::Unordered
            | UpdateScheme::Sp
            | UpdateScheme::Pipeline
            | UpdateScheme::O3
            | UpdateScheme::Coalescing
            | UpdateScheme::SpCounterTree => RebuildStrategy::Full,
        }
    }

    /// Stable machine name (bench table rendering).
    pub fn name(self) -> &'static str {
        match self {
            RebuildStrategy::Full => "full",
            RebuildStrategy::Suffix { .. } => "suffix",
            RebuildStrategy::Shadow => "shadow",
        }
    }
}

/// The repairing recovery engine.
#[derive(Debug, Clone)]
pub struct RecoveryManager {
    geometry: BmtGeometry,
    key: SipKey,
    ctr: CtrEngine,
    mac: MacEngine,
    mac_latency: u64,
    strategy: RebuildStrategy,
}

impl RecoveryManager {
    /// Creates a manager for the given tree shape, master key and
    /// MAC-unit latency (the latency only feeds the cycle model).
    /// Assumes the [`RebuildStrategy::Full`] volatile-tree rebuild;
    /// see [`RecoveryManager::with_strategy`].
    pub fn new(geometry: BmtGeometry, key: SipKey, mac_latency: Cycle) -> Self {
        RecoveryManager {
            geometry,
            key,
            ctr: CtrEngine::new(key),
            mac: MacEngine::new(key),
            mac_latency: mac_latency.get(),
            strategy: RebuildStrategy::Full,
        }
    }

    /// Replaces the rebuild strategy (the recovery-time axis).
    pub fn with_strategy(mut self, strategy: RebuildStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The rebuild strategy in force.
    pub fn strategy(&self) -> RebuildStrategy {
        self.strategy
    }

    /// A manager matching a system configuration, including the
    /// rebuild strategy its scheme earns.
    pub fn for_config(config: &SystemConfig) -> Self {
        RecoveryManager::new(config.bmt, config.key, config.mac_latency)
            .with_strategy(RebuildStrategy::for_config(config))
    }

    /// Attempts repair of a crash image.
    ///
    /// `records` is the run's persist history: it provides the
    /// legitimate root-update sequence for the prefix search and the
    /// set of plaintexts the program ever wrote (to tell an authentic
    /// stale version from silent garbage). `expected` is what the
    /// program believes is durable.
    pub fn recover(
        &self,
        image: &PersistImage,
        records: &[PersistRecord],
        expected: &ObserverExpectation,
    ) -> RecoveryOutcome {
        // Step 1: rebuild the tree the counters imply.
        let rebuilt = BonsaiTree::from_counters(
            self.geometry,
            self.key,
            image.counters.iter().map(|(p, c)| (*p, c)),
        );
        let adopted_root = rebuilt.root();

        // Step 2: root triage (and its share of the cycle model).
        let mut prefix_updates = 0u64;
        let (root, root_error) = if adopted_root == image.root {
            (RootStatus::Intact, None)
        } else {
            match self.match_root_prefix(image.root, records) {
                Some((behind, scanned)) => {
                    prefix_updates = scanned;
                    (RootStatus::Lagged { updates_behind: behind }, None)
                }
                None => {
                    prefix_updates = records.len() as u64;
                    (
                        RootStatus::Suspect,
                        Some(RecoveryError::RootMismatch {
                            persisted: image.root,
                            rebuilt: adopted_root,
                        }),
                    )
                }
            }
        };

        // Step 3: per-block triage. A verified MAC proves the
        // (ciphertext, address, counter) triple is one the engine
        // produced; the plaintext history then separates "the version
        // we wanted" from "an older authentic version".
        let history = plaintext_history(records);
        let mut addrs: Vec<BlockAddr> = expected.plaintexts.keys().copied().collect();
        addrs.sort();
        let mut fates = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let expected_plain = expected.plaintexts[&addr];
            let cipher = image.data.get(&addr).copied().unwrap_or_default();
            let counter = image
                .counters
                .get(&addr.page().index())
                .cloned()
                .unwrap_or_default()
                .value_for(addr);
            let mac = image.macs.get(&addr).copied().unwrap_or_default();
            let fate = if !self.mac.verify(&cipher, addr, counter, mac) {
                BlockFate::Quarantined
            } else {
                let plain = self.ctr.decrypt(cipher, addr, counter);
                if plain == expected_plain {
                    BlockFate::Salvaged
                } else if history
                    .get(&addr)
                    .is_some_and(|versions| versions.contains(&plain))
                {
                    BlockFate::StaleAuthentic
                } else {
                    BlockFate::SilentGarbage
                }
            };
            fates.push((addr, fate));
        }

        // Cycle model: the strategy-dependent rebuild, plus — under
        // the volatile-tree strategy only — one tree-path recompute
        // per prefix-search step to authenticate a lagged root
        // register against the run history. The schemes that persist
        // tree state never consult the history for that: the suffix
        // strategy recomputes the root from its durable lower levels
        // and the shadow strategy cross-checks the dual copy, so their
        // root-lag window costs nothing beyond the rebuild term. The
        // counter fetches and per-block MAC arbitration are common to
        // every strategy. (The *functional* triage above still runs
        // the search for verdict classification in every case.)
        let rebuild_hashes = match self.strategy {
            RebuildStrategy::Full => {
                rebuilt.populated_nodes() as u64 + prefix_updates * self.geometry.levels() as u64
            }
            RebuildStrategy::Suffix { floor } => rebuilt.populated_nodes_above(floor) as u64,
            // One hash to cross-check the two root copies.
            RebuildStrategy::Shadow => 1,
        };
        let cost = RecoveryCost {
            counter_blocks: image.counters.len() as u64,
            hash_computations: rebuild_hashes,
            mac_verifications: expected.plaintexts.len() as u64,
        };
        RecoveryOutcome {
            root,
            root_error,
            adopted_root,
            fates,
            recovery_cycles: cost.estimated_cycles(self.mac_latency),
        }
    }

    /// Searches the recorded root-update sequence (in root-persist
    /// order) for a prefix whose root equals `persisted`, preferring
    /// the longest match. Returns `(updates_behind, updates_scanned)`.
    fn match_root_prefix(
        &self,
        persisted: NodeValue,
        records: &[PersistRecord],
    ) -> Option<(usize, u64)> {
        let mut sorted: Vec<&PersistRecord> = records
            .iter()
            .filter(|r| r.times.root < Cycle::MAX)
            .collect();
        sorted.sort_by_key(|r| r.times.root);
        let mut tree = BonsaiTree::new(self.geometry, self.key);
        let mut prefix_roots = Vec::with_capacity(sorted.len() + 1);
        prefix_roots.push(tree.root()); // the empty prefix
        for r in &sorted {
            tree.update_leaf(r.addr.page().index(), &r.counters_after);
            prefix_roots.push(tree.root());
        }
        let total = sorted.len();
        prefix_roots
            .iter()
            .rposition(|root| *root == persisted)
            .map(|i| (total - i, total as u64))
    }
}

/// Every plaintext the program ever wrote to each address — the set of
/// "authentic versions" that distinguishes a rollback from garbage.
fn plaintext_history(records: &[PersistRecord]) -> HashMap<BlockAddr, Vec<DataBlock>> {
    let mut history: HashMap<BlockAddr, Vec<DataBlock>> = HashMap::new();
    for r in records {
        history.entry(r.addr).or_default().push(r.plaintext);
    }
    // The pre-write medium (all zeroes) is also an authentic state.
    for versions in history.values_mut() {
        versions.push(DataBlock::zeroed());
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultInjector;
    use crate::{with_component_lost, EpochId, PersistId, TupleComponent, TupleTimes};
    use plp_crypto::CounterBlock;

    fn key() -> SipKey {
        SipKey::new(1, 2)
    }

    fn geometry() -> BmtGeometry {
        BmtGeometry::new(8, 4)
    }

    fn manager() -> RecoveryManager {
        RecoveryManager::new(geometry(), key(), Cycle::new(40))
    }

    fn make_records(n: u64) -> Vec<PersistRecord> {
        let ctr_engine = CtrEngine::new(key());
        let mac_engine = MacEngine::new(key());
        let mut counters: HashMap<u64, CounterBlock> = HashMap::new();
        let mut out = Vec::new();
        for i in 0..n {
            let addr = BlockAddr::new((i % 3) * 64); // revisit 3 pages
            let page = addr.page().index();
            let cb = counters.entry(page).or_default();
            let gamma = cb.bump(addr.slot_in_page()).value();
            let plaintext = DataBlock::from_u64(0x1000 + i);
            let ciphertext = ctr_engine.encrypt(plaintext, addr, gamma);
            let mac = mac_engine.compute(&ciphertext, addr, gamma);
            out.push(PersistRecord {
                id: PersistId(i),
                epoch: EpochId(0),
                addr,
                plaintext,
                ciphertext,
                counters_after: cb.clone(),
                mac,
                issued_at: Cycle::new(i * 100),
                times: TupleTimes::atomic(Cycle::new(i * 100 + 360)),
            });
        }
        out
    }

    fn recover_at(records: &[PersistRecord], t: Cycle) -> RecoveryOutcome {
        let image = PersistImage::at_time(records, t, geometry(), key());
        let expected = ObserverExpectation::at_time(records, t);
        manager().recover(&image, records, &expected)
    }

    #[test]
    fn rebuild_strategies_order_the_recovery_cost() {
        let records = make_records(12);
        let t = Cycle::new(1_000_000);
        let image = PersistImage::at_time(&records, t, geometry(), key());
        let expected = ObserverExpectation::at_time(&records, t);
        let full = manager().recover(&image, &records, &expected);
        let suffix = manager()
            .with_strategy(RebuildStrategy::Suffix { floor: 3 })
            .recover(&image, &records, &expected);
        let shadow = manager()
            .with_strategy(RebuildStrategy::Shadow)
            .recover(&image, &records, &expected);
        // Identical functional repair...
        for o in [&suffix, &shadow] {
            assert_eq!(o.verdict(), FaultVerdict::Clean);
            assert_eq!(o.adopted_root, full.adopted_root);
            assert_eq!(o.fates, full.fates);
        }
        // ...but strictly ordered rebuild work: the more the scheme
        // persisted at runtime, the less recovery recomputes.
        assert!(
            full.recovery_cycles > suffix.recovery_cycles,
            "full {} vs suffix {}",
            full.recovery_cycles,
            suffix.recovery_cycles
        );
        assert!(
            suffix.recovery_cycles > shadow.recovery_cycles,
            "suffix {} vs shadow {}",
            suffix.recovery_cycles,
            shadow.recovery_cycles
        );
    }

    #[test]
    fn strategy_follows_the_scheme() {
        let full = SystemConfig::for_scheme(UpdateScheme::Sp);
        assert_eq!(RebuildStrategy::for_config(&full), RebuildStrategy::Full);
        let triad = SystemConfig::for_scheme(UpdateScheme::TriadNvm);
        assert_eq!(
            RebuildStrategy::for_config(&triad),
            RebuildStrategy::Suffix {
                floor: triad.triad_floor()
            }
        );
        let phoenix = SystemConfig::for_scheme(UpdateScheme::Phoenix);
        assert_eq!(RebuildStrategy::for_config(&phoenix), RebuildStrategy::Shadow);
        assert_eq!(
            RecoveryManager::for_config(&phoenix).strategy(),
            RebuildStrategy::Shadow
        );
    }

    #[test]
    fn clean_crash_is_clean_at_every_point() {
        let records = make_records(6);
        for t in [0u64, 360, 400, 760, 1_000_000] {
            let outcome = recover_at(&records, Cycle::new(t));
            assert_eq!(outcome.verdict(), FaultVerdict::Clean, "at {t}: {outcome}");
            assert_eq!(outcome.root, RootStatus::Intact);
            assert_eq!(outcome.count(BlockFate::Quarantined), 0);
        }
    }

    #[test]
    fn lagged_root_is_repaired_not_failed() {
        // The last persist's root update never landed, but its counter,
        // data and MAC did: the passive checker reports bmt_failure,
        // the manager matches the persisted root to the shorter prefix
        // and adopts the rebuilt root.
        let records = make_records(4);
        let faulty = with_component_lost(&records, 3, TupleComponent::Root);
        let t = Cycle::new(1_000_000);
        let image = PersistImage::at_time(&faulty, t, geometry(), key());
        let expected = ObserverExpectation::at_time(&records, t);
        let outcome = manager().recover(&image, &records, &expected);
        assert_eq!(
            outcome.root,
            RootStatus::Lagged { updates_behind: 1 },
            "{outcome}"
        );
        assert_eq!(outcome.verdict(), FaultVerdict::Repaired);
        assert_eq!(outcome.count(BlockFate::Salvaged), expected.plaintexts.len());
        assert!(outcome.root_error.is_none());
        // The adopted root reflects the full counter state.
        let full = PersistImage::at_time(&records, t, geometry(), key());
        assert_eq!(outcome.adopted_root, full.root);
    }

    #[test]
    fn flipped_root_bit_is_suspect_and_repaired() {
        let records = make_records(4);
        let t = Cycle::new(1_000_000);
        let mut image = PersistImage::at_time(&records, t, geometry(), key());
        image.root ^= 1 << 17;
        let expected = ObserverExpectation::at_time(&records, t);
        let outcome = manager().recover(&image, &records, &expected);
        assert_eq!(outcome.root, RootStatus::Suspect);
        assert!(matches!(
            outcome.root_error,
            Some(RecoveryError::RootMismatch { .. })
        ));
        assert_eq!(outcome.verdict(), FaultVerdict::Repaired, "{outcome}");
        let err = outcome.root_error.unwrap();
        assert!(err.to_string().contains("adopted"));
    }

    #[test]
    fn torn_data_write_is_quarantined() {
        let records = make_records(6);
        let t = Cycle::new(1_000_000);
        let mut image = PersistImage::at_time(&records, t, geometry(), key());
        let expected = ObserverExpectation::at_time(&records, t);
        let spec = FaultInjector::new(13)
            .torn_write_component(&mut image, &records, t, TupleComponent::Ciphertext)
            .expect("tearable data");
        let outcome = manager().recover(&image, &records, &expected);
        assert_eq!(
            outcome.verdict(),
            FaultVerdict::DetectedLoss,
            "{spec}: {outcome}"
        );
        assert_eq!(outcome.count(BlockFate::Quarantined), 1);
        assert_eq!(outcome.count(BlockFate::SilentGarbage), 0);
    }

    #[test]
    fn dropped_acknowledged_persist_is_stale_rollback() {
        // Drop the LAST persist entirely: the medium is a perfectly
        // consistent older state, so nothing can detect it — the
        // verdict must say so rather than pretend recovery succeeded.
        let records = make_records(4);
        let t = Cycle::new(1_000_000);
        let thinned: Vec<PersistRecord> = records[..3].to_vec();
        let image = PersistImage::at_time(&thinned, t, geometry(), key());
        let expected = ObserverExpectation::at_time(&records, t);
        let outcome = manager().recover(&image, &records, &expected);
        assert_eq!(outcome.root, RootStatus::Intact, "old state is consistent");
        assert_eq!(outcome.verdict(), FaultVerdict::StaleRollback, "{outcome}");
        assert_eq!(outcome.count(BlockFate::StaleAuthentic), 1);
    }

    #[test]
    fn garbage_that_fails_mac_is_detected_loss_never_silent() {
        let records = make_records(6);
        let t = Cycle::new(1_000_000);
        let mut image = PersistImage::at_time(&records, t, geometry(), key());
        let expected = ObserverExpectation::at_time(&records, t);
        // Overwrite a ciphertext with junk the engine never produced.
        let addr = records[0].addr;
        image.data.insert(addr, DataBlock::from_u64(0xBAD_F00D));
        let outcome = manager().recover(&image, &records, &expected);
        assert_eq!(outcome.verdict(), FaultVerdict::DetectedLoss);
        assert_eq!(outcome.quarantined(), vec![addr]);
    }

    #[test]
    fn recovery_cycles_grow_with_prefix_search() {
        let records = make_records(6);
        let t = Cycle::new(1_000_000);
        let clean = recover_at(&records, t);
        let faulty = with_component_lost(&records, 5, TupleComponent::Root);
        let image = PersistImage::at_time(&faulty, t, geometry(), key());
        let expected = ObserverExpectation::at_time(&records, t);
        let lagged = manager().recover(&image, &records, &expected);
        assert!(
            lagged.recovery_cycles > clean.recovery_cycles,
            "prefix search must cost cycles: {} vs {}",
            lagged.recovery_cycles,
            clean.recovery_cycles
        );
    }

    #[test]
    fn for_config_matches_explicit_construction() {
        let cfg = SystemConfig::default();
        let m = RecoveryManager::for_config(&cfg);
        assert_eq!(m.mac_latency, cfg.mac_latency.get());
        assert_eq!(m.geometry, cfg.bmt);
    }
}
