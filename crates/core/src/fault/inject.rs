//! Deterministic fault injection against a durable [`PersistImage`].
//!
//! Every fault is a pure function of the injector's seed and the
//! (records, crash time) pair, so any failing state replays exactly.
//! Candidate selection always iterates *sorted* address lists — hash-map
//! iteration order never leaks into the fault stream.

use plp_crypto::{CounterBlock, DataBlock, MacTag};
use plp_events::addr::{BlockAddr, CACHE_BLOCK_SIZE};
use plp_events::Cycle;

use crate::{PersistImage, PersistRecord, TupleComponent};

use super::{splitmix_below, splitmix_next, FaultSpec};

/// Words per 64-byte data line.
const DATA_WORDS: usize = CACHE_BLOCK_SIZE / 8;
/// Words per 72-byte split-counter wire (1 major + 64 one-byte minors).
const COUNTER_WORDS: usize = 9;
/// MAC tags per 64-byte MAC line.
const TAGS_PER_LINE: u64 = 8;

/// Injects medium-level faults into a crash image.
///
/// The three fault classes mirror real NVM failure modes:
///
/// * [`torn_write`](FaultInjector::torn_write) — a 64-byte line write
///   that was interrupted mid-flight: each 8-byte word independently
///   holds either the old or the new content (NVDIMM word
///   atomicity is 8 bytes, line writes are not atomic);
/// * [`bit_flip`](FaultInjector::bit_flip) — a retention/disturb error
///   in one persisted cell of the data, MAC, counter or root region;
/// * [`drop_persist`](FaultInjector::drop_persist) — an
///   already-acknowledged WPQ entry that never drained to the medium
///   (the ADR flush promise broken by a platform fault).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: u64,
}

impl FaultInjector {
    /// Creates an injector whose entire fault stream derives from
    /// `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector {
            rng: seed ^ 0x464C_545F_494E_4A00,
        }
    }

    /// Tears the most recent line write of one tuple component: some
    /// 8-byte words of the line revert to the previous durable content.
    ///
    /// The component is chosen among ciphertext, counter and MAC lines
    /// (the root register is a single word — it cannot tear). Returns
    /// `None` when the image holds nothing tearable (e.g. a crash
    /// before the first persist) or every candidate line equals its
    /// predecessor.
    pub fn torn_write(
        &mut self,
        image: &mut PersistImage,
        records: &[PersistRecord],
        t: Cycle,
    ) -> Option<FaultSpec> {
        let mut components = [
            TupleComponent::Ciphertext,
            TupleComponent::Counter,
            TupleComponent::Mac,
        ];
        // Random rotation so one exhausted component does not starve
        // the others, while every component still gets tried.
        let start = pick_index(&mut self.rng, components.len());
        components.rotate_left(start);
        for component in components {
            let spec = match component {
                TupleComponent::Ciphertext => self.tear_data(image, records, t),
                TupleComponent::Counter => self.tear_counter(image, records, t),
                TupleComponent::Mac => self.tear_mac_line(image, records, t),
                TupleComponent::Root => None,
            };
            if spec.is_some() {
                return spec;
            }
        }
        None
    }

    /// Tears a specific component's line (for targeted property tests).
    pub fn torn_write_component(
        &mut self,
        image: &mut PersistImage,
        records: &[PersistRecord],
        t: Cycle,
        component: TupleComponent,
    ) -> Option<FaultSpec> {
        match component {
            TupleComponent::Ciphertext => self.tear_data(image, records, t),
            TupleComponent::Counter => self.tear_counter(image, records, t),
            TupleComponent::Mac => self.tear_mac_line(image, records, t),
            TupleComponent::Root => None,
        }
    }

    fn tear_data(
        &mut self,
        image: &mut PersistImage,
        records: &[PersistRecord],
        t: Cycle,
    ) -> Option<FaultSpec> {
        let mut addrs: Vec<BlockAddr> = image.data.keys().copied().collect();
        addrs.sort();
        if addrs.is_empty() {
            return None;
        }
        let start = pick_index(&mut self.rng, addrs.len());
        for k in 0..addrs.len() {
            let addr = addrs[(start + k) % addrs.len()];
            let Some(&new) = image.data.get(&addr) else {
                continue;
            };
            let old = prior_data(records, addr, t);
            let (mixed, mask) =
                match self.mix_words(&old.as_bytes()[..], &new.as_bytes()[..], DATA_WORDS) {
                    Some(m) => m,
                    None => continue, // line identical to predecessor
                };
            let mut bytes = [0u8; CACHE_BLOCK_SIZE];
            bytes.copy_from_slice(&mixed);
            image.data.insert(addr, DataBlock::from_bytes(bytes));
            return Some(FaultSpec::TornWrite {
                component: TupleComponent::Ciphertext,
                addr,
                kept_old_words: mask,
            });
        }
        None
    }

    fn tear_counter(
        &mut self,
        image: &mut PersistImage,
        records: &[PersistRecord],
        t: Cycle,
    ) -> Option<FaultSpec> {
        let mut pages: Vec<u64> = image.counters.keys().copied().collect();
        pages.sort_unstable();
        if pages.is_empty() {
            return None;
        }
        let start = pick_index(&mut self.rng, pages.len());
        for k in 0..pages.len() {
            let page = pages[(start + k) % pages.len()];
            let Some(new) = image.counters.get(&page).cloned() else {
                continue;
            };
            let old = prior_counter(records, page, t);
            let (mixed, mask) =
                match self.mix_words(&old.to_bytes()[..], &new.to_bytes()[..], COUNTER_WORDS) {
                    Some(m) => m,
                    None => continue,
                };
            let mut bytes = [0u8; 72];
            bytes.copy_from_slice(&mixed);
            // Word-granular mixing of two valid wires keeps every minor
            // byte from a valid wire, so the result always decodes; a
            // decode failure would mean no injectable fault, not a crash.
            let Ok(torn) = CounterBlock::from_bytes(&bytes) else {
                continue;
            };
            image.counters.insert(page, torn);
            return Some(FaultSpec::TornWrite {
                component: TupleComponent::Counter,
                addr: plp_events::addr::PageAddr::new(page).first_block(),
                kept_old_words: mask,
            });
        }
        None
    }

    fn tear_mac_line(
        &mut self,
        image: &mut PersistImage,
        records: &[PersistRecord],
        t: Cycle,
    ) -> Option<FaultSpec> {
        let mut addrs: Vec<BlockAddr> = image.macs.keys().copied().collect();
        addrs.sort();
        if addrs.is_empty() {
            return None;
        }
        let start = pick_index(&mut self.rng, addrs.len());
        for k in 0..addrs.len() {
            let victim = addrs[(start + k) % addrs.len()];
            let old = prior_mac(records, victim, t);
            let Some(&current) = image.macs.get(&victim) else {
                continue;
            };
            if old == current {
                continue; // tag unchanged; tearing is a no-op
            }
            // The victim's tag shares a 64-byte MAC line with 7
            // neighbours; the torn line reverts the victim's word and a
            // random subset of the neighbouring tags that are present.
            let line_base = victim.index() / TAGS_PER_LINE * TAGS_PER_LINE;
            let mut mask: u16 = 0;
            for slot in 0..TAGS_PER_LINE {
                let addr = BlockAddr::new(line_base + slot);
                let revert = addr == victim
                    || (image.macs.contains_key(&addr) && splitmix_next(&mut self.rng) & 1 == 1);
                if revert {
                    if let std::collections::hash_map::Entry::Occupied(mut e) =
                        image.macs.entry(addr)
                    {
                        e.insert(prior_mac(records, addr, t));
                        mask |= 1 << slot;
                    }
                }
            }
            return Some(FaultSpec::TornWrite {
                component: TupleComponent::Mac,
                addr: victim,
                kept_old_words: mask,
            });
        }
        None
    }

    /// Mixes `old` and `new` at 8-byte-word granularity. The mask has
    /// bit *i* set when word *i* kept the old content; at least one
    /// *differing* word is forced old (the fault is real) and at least
    /// one word keeps the new content when possible (the line is torn,
    /// not simply dropped). Returns `None` when the lines are equal.
    fn mix_words(&mut self, old: &[u8], new: &[u8], words: usize) -> Option<(Vec<u8>, u16)> {
        debug_assert_eq!(old.len(), new.len());
        let differing: Vec<usize> = (0..words)
            .filter(|&w| old[w * 8..(w + 1) * 8] != new[w * 8..(w + 1) * 8])
            .collect();
        if differing.is_empty() {
            return None;
        }
        let forced = differing[pick_index(&mut self.rng, differing.len())];
        let mut mask: u16 = 1 << forced;
        for w in 0..words {
            if w != forced && splitmix_next(&mut self.rng) & 1 == 1 {
                mask |= 1 << w;
            }
        }
        if u64::from(mask.count_ones()) == words as u64 {
            // Fully-old is a dropped line, not a torn one: keep one new
            // word if any word can stay new without undoing the fault.
            if let Some(keep_new) = (0..words).find(|w| *w != forced) {
                mask &= !(1 << keep_new);
            }
        }
        let mut mixed = new.to_vec();
        for w in 0..words {
            if mask & (1 << w) != 0 {
                mixed[w * 8..(w + 1) * 8].copy_from_slice(&old[w * 8..(w + 1) * 8]);
            }
        }
        Some((mixed, mask))
    }

    /// Flips one bit in a randomly-chosen persisted component.
    ///
    /// Counter flips are restricted to architecturally-meaningful bits
    /// (the 64-bit major and each minor's low 7 bits) because the image
    /// stores counters in decoded form; data, MAC and root flips may
    /// hit any bit. Returns `None` only for an entirely empty image —
    /// the root register is always present.
    pub fn bit_flip(&mut self, image: &mut PersistImage) -> Option<FaultSpec> {
        let mut candidates: Vec<TupleComponent> = Vec::with_capacity(4);
        if !image.data.is_empty() {
            candidates.push(TupleComponent::Ciphertext);
        }
        if !image.counters.is_empty() {
            candidates.push(TupleComponent::Counter);
        }
        if !image.macs.is_empty() {
            candidates.push(TupleComponent::Mac);
        }
        candidates.push(TupleComponent::Root);
        let component = candidates[pick_index(&mut self.rng, candidates.len())];
        self.bit_flip_component(image, component)
    }

    /// Flips one bit in a specific component (for targeted property
    /// tests). Returns `None` when that component has no persisted
    /// state.
    pub fn bit_flip_component(
        &mut self,
        image: &mut PersistImage,
        component: TupleComponent,
    ) -> Option<FaultSpec> {
        match component {
            TupleComponent::Ciphertext => {
                let mut addrs: Vec<BlockAddr> = image.data.keys().copied().collect();
                addrs.sort();
                let addr = *addrs.get(splitmix_below_opt(&mut self.rng, addrs.len())?)?;
                let bit = pick_bit(&mut self.rng, (CACHE_BLOCK_SIZE * 8) as u64);
                let mut bytes = *image.data.get(&addr)?.as_bytes();
                bytes[byte_slot(bit)] ^= 1 << (bit % 8);
                image.data.insert(addr, DataBlock::from_bytes(bytes));
                Some(FaultSpec::BitFlip {
                    component,
                    addr,
                    bit,
                })
            }
            TupleComponent::Mac => {
                let mut addrs: Vec<BlockAddr> = image.macs.keys().copied().collect();
                addrs.sort();
                let addr = *addrs.get(splitmix_below_opt(&mut self.rng, addrs.len())?)?;
                let bit = pick_bit(&mut self.rng, 64);
                let raw = image.macs.get(&addr)?.raw();
                image.macs.insert(addr, MacTag::from_raw(raw ^ (1 << bit)));
                Some(FaultSpec::BitFlip {
                    component,
                    addr,
                    bit,
                })
            }
            TupleComponent::Counter => {
                let mut pages: Vec<u64> = image.counters.keys().copied().collect();
                pages.sort_unstable();
                let page = *pages.get(splitmix_below_opt(&mut self.rng, pages.len())?)?;
                // Bit space: 64 major bits then 7 valid bits per minor.
                let pick = pick_bit(&mut self.rng, 64 + 64 * 7);
                let mut bytes = image.counters.get(&page)?.to_bytes();
                if pick < 64 {
                    bytes[byte_slot(pick)] ^= 1 << (pick % 8);
                } else {
                    let minor = usize::try_from((pick - 64) / 7).unwrap_or(0);
                    let bit = (pick - 64) % 7;
                    bytes[8 + minor] ^= 1 << bit;
                }
                // Flips stay inside the encodable bit space (major word
                // or a minor's low 7 bits), so the block still decodes.
                // lint: allow(no-panic-lib) flip targets only valid counter bits by construction
                let flipped = CounterBlock::from_bytes(&bytes).expect("valid flips decode");
                image.counters.insert(page, flipped);
                Some(FaultSpec::BitFlip {
                    component,
                    addr: plp_events::addr::PageAddr::new(page).first_block(),
                    bit: pick,
                })
            }
            TupleComponent::Root => {
                let bit = pick_bit(&mut self.rng, 64);
                image.root ^= 1 << bit;
                Some(FaultSpec::BitFlip {
                    component,
                    addr: BlockAddr::new(0),
                    bit,
                })
            }
        }
    }

    /// Drops one already-completed persist: the returned record set is
    /// `records` minus a tuple whose completion the program observed
    /// but whose writes never reached the medium. The caller rebuilds
    /// the image from the thinned records while holding recovery to the
    /// *original* expectations.
    ///
    /// Returns `None` when no persist had completed by `t`.
    pub fn drop_persist(
        &mut self,
        records: &[PersistRecord],
        t: Cycle,
    ) -> Option<(Vec<PersistRecord>, FaultSpec)> {
        let completed: Vec<usize> = (0..records.len())
            .filter(|&i| records[i].completed_at() <= t)
            .collect();
        let victim = completed[splitmix_below_opt(&mut self.rng, completed.len())?];
        let spec = FaultSpec::DroppedPersist {
            id: records[victim].id,
            addr: records[victim].addr,
        };
        let mut thinned = records.to_vec();
        thinned.remove(victim);
        Some((thinned, spec))
    }
}

/// `splitmix_below` over a `usize` bound, `None` when the bound is 0.
fn splitmix_below_opt(state: &mut u64, bound: usize) -> Option<usize> {
    if bound == 0 {
        None
    } else {
        Some(pick_index(state, bound))
    }
}

/// A uniformly-chosen index below `len`; callers guarantee `len > 0`.
fn pick_index(state: &mut u64, len: usize) -> usize {
    // lint: allow(narrowing-cast) the draw is below len, which itself fits in a usize
    splitmix_below(state, len as u64) as usize
}

/// A uniformly-chosen bit position below `bound` (at most a few
/// hundred), as the `u32` a [`FaultSpec`] carries.
fn pick_bit(state: &mut u64, bound: u64) -> u32 {
    u32::try_from(splitmix_below(state, bound)).unwrap_or(0)
}

/// Byte index holding bit `bit` of a packed little-endian buffer.
fn byte_slot(bit: u32) -> usize {
    (bit / 8) as usize
}

/// The durable content a component held *before* its most recent write
/// at crash time `t` (the "old" side of a torn line). Defaults model
/// never-written medium.
fn prior_data(records: &[PersistRecord], addr: BlockAddr, t: Cycle) -> DataBlock {
    let mut hist: Vec<(Cycle, DataBlock)> = records
        .iter()
        .filter(|r| r.addr == addr && r.times.data <= t)
        .map(|r| (r.times.data, r.ciphertext))
        .collect();
    hist.sort_by_key(|(time, _)| *time);
    match hist.len() {
        0 | 1 => DataBlock::zeroed(),
        n => hist[n - 2].1,
    }
}

fn prior_counter(records: &[PersistRecord], page: u64, t: Cycle) -> CounterBlock {
    let mut hist: Vec<(Cycle, &CounterBlock)> = records
        .iter()
        .filter(|r| r.addr.page().index() == page && r.times.counter <= t)
        .map(|r| (r.times.counter, &r.counters_after))
        .collect();
    hist.sort_by_key(|(time, _)| *time);
    match hist.len() {
        0 | 1 => CounterBlock::default(),
        n => hist[n - 2].1.clone(),
    }
}

fn prior_mac(records: &[PersistRecord], addr: BlockAddr, t: Cycle) -> MacTag {
    let mut hist: Vec<(Cycle, MacTag)> = records
        .iter()
        .filter(|r| r.addr == addr && r.times.mac <= t)
        .map(|r| (r.times.mac, r.mac))
        .collect();
    hist.sort_by_key(|(time, _)| *time);
    match hist.len() {
        0 | 1 => MacTag::from_raw(0),
        n => hist[n - 2].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EpochId, PersistId, TupleTimes};
    use plp_bmt::BmtGeometry;
    use plp_crypto::{CtrEngine, MacEngine, SipKey};
    use std::collections::HashMap;

    fn key() -> SipKey {
        SipKey::new(1, 2)
    }

    fn geometry() -> BmtGeometry {
        BmtGeometry::new(8, 4)
    }

    /// n atomic persists, two writes per address so every component has
    /// a real predecessor.
    fn make_records(n: u64) -> Vec<PersistRecord> {
        let ctr_engine = CtrEngine::new(key());
        let mac_engine = MacEngine::new(key());
        let mut counters: HashMap<u64, CounterBlock> = HashMap::new();
        let mut out = Vec::new();
        for i in 0..n {
            let addr = BlockAddr::new((i / 2) * 3); // two persists per block
            let page = addr.page().index();
            let cb = counters.entry(page).or_default();
            let gamma = cb.bump(addr.slot_in_page()).value();
            let plaintext = DataBlock::from_u64(0xA000 + i);
            let ciphertext = ctr_engine.encrypt(plaintext, addr, gamma);
            let mac = mac_engine.compute(&ciphertext, addr, gamma);
            out.push(PersistRecord {
                id: PersistId(i),
                epoch: EpochId(0),
                addr,
                plaintext,
                ciphertext,
                counters_after: cb.clone(),
                mac,
                issued_at: Cycle::new(i * 100),
                times: TupleTimes::atomic(Cycle::new(i * 100 + 360)),
            });
        }
        out
    }

    fn image_at(records: &[PersistRecord], t: Cycle) -> PersistImage {
        PersistImage::at_time(records, t, geometry(), key())
    }

    #[test]
    fn torn_data_write_changes_exactly_one_line() {
        let records = make_records(6);
        let t = Cycle::new(1_000_000);
        let clean = image_at(&records, t);
        let mut torn = clean.clone();
        let spec = FaultInjector::new(11)
            .torn_write_component(&mut torn, &records, t, TupleComponent::Ciphertext)
            .expect("tearable data exists");
        let FaultSpec::TornWrite {
            component, addr, ..
        } = spec
        else {
            panic!("wrong spec: {spec:?}")
        };
        assert_eq!(component, TupleComponent::Ciphertext);
        assert_ne!(torn.data[&addr], clean.data[&addr], "fault must be real");
        let diffs = clean.data.iter().filter(|(a, d)| torn.data[a] != **d).count();
        assert_eq!(diffs, 1, "only the victim line changes");
        assert_eq!(torn.macs, clean.macs);
        assert_eq!(torn.counters, clean.counters);
    }

    #[test]
    fn torn_counter_write_stays_decodable_and_differs() {
        let records = make_records(6);
        let t = Cycle::new(1_000_000);
        let clean = image_at(&records, t);
        let mut torn = clean.clone();
        let spec = FaultInjector::new(5)
            .torn_write_component(&mut torn, &records, t, TupleComponent::Counter)
            .expect("tearable counter exists");
        let FaultSpec::TornWrite { addr, .. } = spec else {
            panic!("wrong spec")
        };
        let page = addr.page().index();
        assert_ne!(torn.counters[&page], clean.counters[&page]);
        // Decodability is enforced by construction (from_bytes in the
        // injector); round-trip to be sure.
        let bytes = torn.counters[&page].to_bytes();
        assert!(CounterBlock::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn torn_mac_line_reverts_the_victim_tag() {
        let records = make_records(6);
        let t = Cycle::new(1_000_000);
        let clean = image_at(&records, t);
        let mut torn = clean.clone();
        let spec = FaultInjector::new(3)
            .torn_write_component(&mut torn, &records, t, TupleComponent::Mac)
            .expect("tearable MAC exists");
        let FaultSpec::TornWrite {
            addr,
            kept_old_words,
            ..
        } = spec
        else {
            panic!("wrong spec")
        };
        assert_ne!(torn.macs[&addr], clean.macs[&addr]);
        assert_ne!(kept_old_words, 0);
    }

    #[test]
    fn bit_flip_hits_exactly_one_bit() {
        let records = make_records(4);
        let t = Cycle::new(1_000_000);
        let clean = image_at(&records, t);
        for component in TupleComponent::ALL {
            let mut hit = clean.clone();
            let spec = FaultInjector::new(99)
                .bit_flip_component(&mut hit, component)
                .expect("state exists");
            let FaultSpec::BitFlip { .. } = spec else {
                panic!("wrong spec")
            };
            match component {
                TupleComponent::Ciphertext => {
                    let flipped_bits: u32 = clean
                        .data
                        .iter()
                        .map(|(a, d)| {
                            d.as_bytes()
                                .iter()
                                .zip(hit.data[a].as_bytes())
                                .map(|(x, y)| (x ^ y).count_ones())
                                .sum::<u32>()
                        })
                        .sum();
                    assert_eq!(flipped_bits, 1);
                }
                TupleComponent::Mac => {
                    let flipped: u32 = clean
                        .macs
                        .iter()
                        .map(|(a, m)| (m.raw() ^ hit.macs[a].raw()).count_ones())
                        .sum();
                    assert_eq!(flipped, 1);
                }
                TupleComponent::Counter => {
                    let flipped: u32 = clean
                        .counters
                        .iter()
                        .map(|(p, c)| {
                            c.to_bytes()
                                .iter()
                                .zip(hit.counters[p].to_bytes())
                                .map(|(x, y)| (x ^ y).count_ones())
                                .sum::<u32>()
                        })
                        .sum();
                    assert_eq!(flipped, 1);
                }
                TupleComponent::Root => {
                    assert_eq!((clean.root ^ hit.root).count_ones(), 1);
                }
            }
        }
    }

    #[test]
    fn drop_persist_removes_a_completed_record() {
        let records = make_records(4);
        let t = Cycle::new(500); // first two persists completed (360, 460)
        let (thinned, spec) = FaultInjector::new(42)
            .drop_persist(&records, t)
            .expect("completed persists exist");
        assert_eq!(thinned.len(), records.len() - 1);
        let FaultSpec::DroppedPersist { id, .. } = spec else {
            panic!("wrong spec")
        };
        assert!(id.0 < 2, "only completed persists may drop, got {id}");
        assert!(thinned.iter().all(|r| r.id != id));
    }

    #[test]
    fn empty_image_yields_no_faults_except_root_flip() {
        let records = make_records(4);
        let t = Cycle::ZERO; // nothing persisted yet
        let mut image = image_at(&records, t);
        let mut inj = FaultInjector::new(1);
        assert!(inj.torn_write(&mut image, &records, t).is_none());
        assert!(inj.drop_persist(&records, t).is_none());
        let spec = inj.bit_flip(&mut image).expect("root is always present");
        assert!(matches!(
            spec,
            FaultSpec::BitFlip {
                component: TupleComponent::Root,
                ..
            }
        ));
    }

    #[test]
    fn fault_streams_replay_from_the_seed() {
        let records = make_records(8);
        let t = Cycle::new(1_000_000);
        let base = image_at(&records, t);
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            let (mut a, mut b) = (base.clone(), base.clone());
            let sa = FaultInjector::new(seed).torn_write(&mut a, &records, t);
            let sb = FaultInjector::new(seed).torn_write(&mut b, &records, t);
            assert_eq!(sa, sb);
            assert_eq!(a, b);
            let (mut a, mut b) = (base.clone(), base.clone());
            let fa = FaultInjector::new(seed).bit_flip(&mut a);
            let fb = FaultInjector::new(seed).bit_flip(&mut b);
            assert_eq!(fa, fb);
            assert_eq!(a, b);
        }
    }
}
