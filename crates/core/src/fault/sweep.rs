//! Crash-point enumeration and the per-scheme robustness sweep.
//!
//! In the spirit of CrashMonkey and ALICE, crash points are not random:
//! the recorded [`TupleTimes`](crate::TupleTimes) partition time into
//! intervals within which the durable state is constant, so sweeping
//! one point per distinct component-persist timestamp covers *every*
//! reachable durable state. A deterministic sampler bounds the work
//! when a run has more distinct timestamps than the budget.

use plp_events::Cycle;
use serde::{Deserialize, Serialize};

use crate::{ObserverExpectation, PersistImage, PersistRecord, SystemConfig, UpdateScheme};

use super::{
    splitmix_below, splitmix_next, FaultClass, FaultConfig, FaultInjector, FaultSpec, FaultVerdict,
    RecoveryManager,
};

/// Every distinct durable state's representative crash time: cycle 0
/// plus each recorded component-persist timestamp (deduplicated,
/// sorted). When more than `budget` points exist, a seeded sampler
/// keeps the first and last and an even deterministic spread between
/// them.
pub fn enumerate_crash_points(records: &[PersistRecord], budget: usize, seed: u64) -> Vec<Cycle> {
    let mut points: Vec<Cycle> = Vec::with_capacity(records.len() * 4 + 1);
    points.push(Cycle::ZERO);
    for r in records {
        for t in [r.times.data, r.times.counter, r.times.mac, r.times.root] {
            if t < Cycle::MAX {
                points.push(t);
            }
        }
    }
    points.sort_unstable();
    points.dedup();
    if points.len() <= budget || budget == 0 {
        return points;
    }
    // Deterministic stratified sample: one point per equal-width
    // stratum, jittered by the seed, endpoints always kept.
    let mut rng = seed ^ 0x4357_5054_5F53_414D;
    let n = points.len();
    let mut sampled = Vec::with_capacity(budget);
    sampled.push(points[0]);
    for k in 1..budget.saturating_sub(1) {
        let lo = k * n / budget;
        let hi = ((k + 1) * n / budget).max(lo + 1).min(n);
        let pick = splitmix_below(&mut rng, (hi - lo) as u64);
        let idx = lo + usize::try_from(pick).unwrap_or(0);
        sampled.push(points[idx]);
    }
    sampled.push(points[n - 1]);
    sampled.dedup();
    sampled
}

/// One recovery attempt inside a sweep: where the crash hit, what was
/// injected (if anything) and what came out.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// The crash time.
    pub crash_at: Cycle,
    /// The injected fault; `None` for the pure-crash baseline.
    pub spec: Option<FaultSpec>,
    /// The recovery verdict.
    pub verdict: FaultVerdict,
    /// Modeled recovery latency.
    pub recovery_cycles: u64,
}

/// Verdict counts for one fault class across all crash points.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassTally {
    /// Attempts where a fault was actually injected (or, for the
    /// baseline, recovery attempts).
    pub attempts: u64,
    /// Injection found no candidate state (e.g. a crash before the
    /// first persist) — nothing to measure.
    pub skipped: u64,
    /// [`FaultVerdict::Clean`] outcomes.
    pub clean: u64,
    /// [`FaultVerdict::Repaired`] outcomes.
    pub repaired: u64,
    /// [`FaultVerdict::DetectedLoss`] outcomes.
    pub detected_loss: u64,
    /// [`FaultVerdict::StaleRollback`] outcomes.
    pub stale_rollback: u64,
    /// [`FaultVerdict::UndetectedCorruption`] outcomes.
    pub undetected_corruption: u64,
    /// Sum of modeled recovery cycles over attempts.
    pub total_recovery_cycles: u64,
}

impl ClassTally {
    fn record(&mut self, verdict: FaultVerdict, cycles: u64) {
        self.attempts += 1;
        self.total_recovery_cycles += cycles;
        match verdict {
            FaultVerdict::Clean => self.clean += 1,
            FaultVerdict::Repaired => self.repaired += 1,
            FaultVerdict::DetectedLoss => self.detected_loss += 1,
            FaultVerdict::StaleRollback => self.stale_rollback += 1,
            FaultVerdict::UndetectedCorruption => self.undetected_corruption += 1,
        }
    }

    /// Attempts whose bad state went unflagged (the contract breach).
    pub fn undetected(&self) -> u64 {
        self.stale_rollback + self.undetected_corruption
    }

    /// Mean modeled recovery cycles per attempt.
    pub fn mean_recovery_cycles(&self) -> u64 {
        self.total_recovery_cycles
            .checked_div(self.attempts)
            .unwrap_or(0)
    }

    /// The worst verdict observed.
    pub fn worst(&self) -> FaultVerdict {
        if self.undetected_corruption > 0 {
            FaultVerdict::UndetectedCorruption
        } else if self.stale_rollback > 0 {
            FaultVerdict::StaleRollback
        } else if self.detected_loss > 0 {
            FaultVerdict::DetectedLoss
        } else if self.repaired > 0 {
            FaultVerdict::Repaired
        } else {
            FaultVerdict::Clean
        }
    }
}

/// The robustness matrix row for one scheme: pure-crash baseline plus
/// one tally per injected fault class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeRobustness {
    /// The scheme swept.
    pub scheme: UpdateScheme,
    /// How many crash points were actually swept.
    pub crash_points: usize,
    /// Pure-crash recovery outcomes (no injected fault).
    pub baseline: ClassTally,
    /// Outcomes per injected fault class.
    pub classes: Vec<(FaultClass, ClassTally)>,
    /// Up to eight worst non-clean examples, for reporting.
    pub examples: Vec<FaultOutcome>,
}

impl SchemeRobustness {
    /// The tally for one class, if it was swept.
    pub fn class(&self, class: FaultClass) -> Option<&ClassTally> {
        self.classes.iter().find(|(c, _)| *c == class).map(|(_, t)| t)
    }

    /// The detect-or-recover contract: across the pure-crash baseline
    /// and the torn-write and bit-flip classes, no outcome may be
    /// stale-rollback or undetected-corruption. (Dropped-persist
    /// outcomes are excluded: silently resurrecting an older authentic
    /// tuple when the ADR promise itself breaks is undetectable by
    /// construction for *any* integrity scheme.)
    pub fn detect_or_recover_holds(&self) -> bool {
        self.baseline.undetected() == 0
            && [FaultClass::TornWrite, FaultClass::BitFlip]
                .iter()
                .all(|c| self.class(*c).is_none_or(|t| t.undetected() == 0))
    }
}

/// Sweeps recovery across enumerated crash points, injecting each
/// enabled fault class at every point.
#[derive(Debug, Clone)]
pub struct FaultSweep {
    manager: RecoveryManager,
    geometry: plp_bmt::BmtGeometry,
    key: plp_crypto::SipKey,
    fault: FaultConfig,
}

impl FaultSweep {
    /// A sweep using the system's tree shape, key and MAC latency.
    pub fn new(config: &SystemConfig, fault: FaultConfig) -> Self {
        FaultSweep {
            manager: RecoveryManager::for_config(config),
            geometry: config.bmt,
            key: config.key,
            fault,
        }
    }

    /// The fault configuration this sweep runs.
    pub fn fault_config(&self) -> FaultConfig {
        self.fault
    }

    /// Runs the full sweep for one scheme's recorded persists.
    pub fn run(&self, scheme: UpdateScheme, records: &[PersistRecord]) -> SchemeRobustness {
        let points =
            enumerate_crash_points(records, self.fault.crash_point_budget, self.fault.seed);
        let classes = self.fault.enabled_classes();
        let mut baseline = ClassTally::default();
        let mut tallies: Vec<(FaultClass, ClassTally)> =
            classes.iter().map(|c| (*c, ClassTally::default())).collect();
        let mut examples: Vec<FaultOutcome> = Vec::new();

        for (pi, &t) in points.iter().enumerate() {
            let image = PersistImage::at_time(records, t, self.geometry, self.key);
            let expected = ObserverExpectation::at_time(records, t);

            // Pure-crash baseline: the scheme's own ordering behaviour.
            let outcome = self.manager.recover(&image, records, &expected);
            record_outcome(
                &mut baseline,
                &mut examples,
                FaultOutcome {
                    crash_at: t,
                    spec: None,
                    verdict: outcome.verdict(),
                    recovery_cycles: outcome.recovery_cycles,
                },
            );

            for (ci, class) in classes.iter().enumerate() {
                let tally = &mut tallies[ci].1;
                for fi in 0..self.fault.faults_per_point {
                    let seed = mix_seed(self.fault.seed, scheme, pi, ci, fi);
                    let mut injector = FaultInjector::new(seed);
                    let (recovered, spec) = match class {
                        FaultClass::TornWrite => {
                            let mut img = image.clone();
                            match injector.torn_write(&mut img, records, t) {
                                Some(spec) => {
                                    (self.manager.recover(&img, records, &expected), spec)
                                }
                                None => {
                                    tally.skipped += 1;
                                    continue;
                                }
                            }
                        }
                        FaultClass::BitFlip => {
                            let mut img = image.clone();
                            match injector.bit_flip(&mut img) {
                                Some(spec) => {
                                    (self.manager.recover(&img, records, &expected), spec)
                                }
                                None => {
                                    tally.skipped += 1;
                                    continue;
                                }
                            }
                        }
                        FaultClass::DroppedPersist => {
                            match injector.drop_persist(records, t) {
                                Some((thinned, spec)) => {
                                    let img = PersistImage::at_time(
                                        &thinned,
                                        t,
                                        self.geometry,
                                        self.key,
                                    );
                                    // History and expectations stay the
                                    // original run's: the program saw
                                    // the ack.
                                    (self.manager.recover(&img, records, &expected), spec)
                                }
                                None => {
                                    tally.skipped += 1;
                                    continue;
                                }
                            }
                        }
                    };
                    record_outcome(
                        tally,
                        &mut examples,
                        FaultOutcome {
                            crash_at: t,
                            spec: Some(spec),
                            verdict: recovered.verdict(),
                            recovery_cycles: recovered.recovery_cycles,
                        },
                    );
                }
            }
        }

        SchemeRobustness {
            scheme,
            crash_points: points.len(),
            baseline,
            classes: tallies,
            examples,
        }
    }
}

fn record_outcome(tally: &mut ClassTally, examples: &mut Vec<FaultOutcome>, outcome: FaultOutcome) {
    tally.record(outcome.verdict, outcome.recovery_cycles);
    if outcome.verdict > FaultVerdict::Repaired && examples.len() < 8 {
        examples.push(outcome);
    }
}

/// Folds (seed, scheme, crash point, class, fault index) into one
/// per-injection seed, so every injection replays independently.
fn mix_seed(seed: u64, scheme: UpdateScheme, point: usize, class: usize, fault: usize) -> u64 {
    let mut s = seed;
    for byte in scheme.name().bytes() {
        s = s.wrapping_mul(0x100_0000_01B3) ^ byte as u64;
    }
    let mut state = s
        ^ (point as u64).wrapping_mul(0x9E37_79B9)
        ^ (class as u64) << 48
        ^ (fault as u64) << 56;
    splitmix_next(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_with_crash, SystemConfig};
    use plp_trace::{TraceGenerator, WorkloadProfile};

    fn profile() -> WorkloadProfile {
        WorkloadProfile::builder("sweep")
            .base_ipc(1.0)
            .store_ppki(50.0, 20.0)
            .load_ppki(60.0)
            .locality(0.7, 128, 16.0)
            .build()
    }

    fn records_for(scheme: UpdateScheme, instructions: u64) -> Vec<crate::PersistRecord> {
        let mut cfg = SystemConfig::for_scheme(scheme);
        cfg.record_persists = true;
        let trace = TraceGenerator::new(profile(), 7).generate(instructions);
        let (report, _, _) = run_with_crash(&cfg, 1.0, &trace, None);
        report.records
    }

    #[test]
    fn enumeration_covers_every_distinct_timestamp_when_unbudgeted() {
        let records = records_for(UpdateScheme::Sp, 2_000);
        assert!(!records.is_empty());
        let points = enumerate_crash_points(&records, usize::MAX, 1);
        assert_eq!(points[0], Cycle::ZERO);
        assert!(points.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        // Every component timestamp is present.
        for r in &records {
            for t in [r.times.data, r.times.counter, r.times.mac, r.times.root] {
                assert!(points.binary_search(&t).is_ok(), "missing point {t:?}");
            }
        }
    }

    #[test]
    fn budgeted_enumeration_is_deterministic_and_keeps_endpoints() {
        let records = records_for(UpdateScheme::Sp, 12_000);
        let all = enumerate_crash_points(&records, usize::MAX, 1);
        assert!(all.len() > 100, "workload too small: {}", all.len());
        let a = enumerate_crash_points(&records, 100, 42);
        let b = enumerate_crash_points(&records, 100, 42);
        assert_eq!(a, b);
        assert!(a.len() <= 100 && a.len() >= 90);
        assert_eq!(a[0], all[0]);
        assert_eq!(*a.last().unwrap(), *all.last().unwrap());
        let c = enumerate_crash_points(&records, 100, 43);
        assert_ne!(a, c, "different seeds sample different interiors");
    }

    #[test]
    fn correct_scheme_sweep_has_zero_undetected() {
        let records = records_for(UpdateScheme::Pipeline, 3_000);
        let cfg = SystemConfig::for_scheme(UpdateScheme::Pipeline);
        let sweep = FaultSweep::new(&cfg, FaultConfig::acceptance(7));
        let result = sweep.run(UpdateScheme::Pipeline, &records);
        assert!(result.detect_or_recover_holds(), "{:?}", result.examples);
        assert_eq!(result.baseline.worst(), FaultVerdict::Clean);
        // Real faults were actually injected and detected.
        let torn = result.class(FaultClass::TornWrite).unwrap();
        let flip = result.class(FaultClass::BitFlip).unwrap();
        assert!(torn.attempts > 0 && flip.attempts > 0);
        assert!(
            torn.detected_loss > 0,
            "torn writes must surface as detected loss: {torn:?}"
        );
        assert!(flip.detected_loss + flip.repaired > 0, "{flip:?}");
    }

    #[test]
    fn sweep_replays_identically_from_the_seed() {
        let records = records_for(UpdateScheme::O3, 1_500);
        let cfg = SystemConfig::for_scheme(UpdateScheme::O3);
        let sweep = FaultSweep::new(&cfg, FaultConfig::all_classes(11));
        let a = sweep.run(UpdateScheme::O3, &records);
        let b = sweep.run(UpdateScheme::O3, &records);
        assert_eq!(a, b);
    }

    #[test]
    fn dropped_persists_surface_as_stale_rollback_not_silent_garbage() {
        let records = records_for(UpdateScheme::Sp, 2_000);
        let cfg = SystemConfig::for_scheme(UpdateScheme::Sp);
        let sweep = FaultSweep::new(&cfg, FaultConfig::all_classes(3));
        let result = sweep.run(UpdateScheme::Sp, &records);
        let drop = result.class(FaultClass::DroppedPersist).unwrap();
        assert!(drop.attempts > 0);
        assert_eq!(
            drop.undetected_corruption, 0,
            "a dropped persist must never decay into silent garbage"
        );
        assert!(
            drop.stale_rollback > 0,
            "dropping the newest tuple should roll back undetectably: {drop:?}"
        );
        // The torn/bit-flip contract still holds even with drops on.
        assert!(result.detect_or_recover_holds());
    }

    #[test]
    fn unordered_baseline_shows_failures_but_never_silent_garbage() {
        let records = records_for(UpdateScheme::Unordered, 3_000);
        let cfg = SystemConfig::for_scheme(UpdateScheme::Unordered);
        let sweep = FaultSweep::new(&cfg, FaultConfig::acceptance(7));
        let result = sweep.run(UpdateScheme::Unordered, &records);
        assert!(
            result.baseline.worst() > FaultVerdict::Clean,
            "unordered must fail somewhere: {:?}",
            result.baseline
        );
        assert_eq!(
            result.baseline.undetected_corruption
                + result
                    .classes
                    .iter()
                    .map(|(_, t)| t.undetected_corruption)
                    .sum::<u64>(),
            0,
            "MAC + BMT must still catch every non-authentic state"
        );
    }
}
