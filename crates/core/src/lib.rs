//! Persist-level parallelism for secure persistent memory.
//!
//! This crate is the paper's contribution: given the substrates
//! (crypto, BMT, caches, NVM, traces), it implements
//!
//! * the **memory tuple** `(C, γ, M, R)` and its per-component persist
//!   timing ([`PersistRecord`], [`TupleTimes`]) — Invariant 1;
//! * the **2-step persist WPQ** ([`Wpq`]) that gathers and locks
//!   tuples in the ADR domain (§IV-A1);
//! * the **six update schemes** of Table IV ([`UpdateScheme`]) with
//!   their engines: sequential, PTT-pipelined (PLP 1), unordered,
//!   ETT out-of-order (PLP 2) and LCA-coalescing (PLP 3);
//! * **persistency models**: strict (per-store) and epoch (sfence
//!   boundaries every [`SystemConfig::epoch_size`] stores);
//! * the **full-system simulator** (an immutable [`SimSetup`] minting
//!   single-use [`Simulation`]s) driven by `plp-trace` workloads;
//! * **crash injection and recovery checking** ([`PersistImage`],
//!   [`RecoveryChecker`]) implementing the Table I / Table II failure
//!   taxonomy — Invariant 2 as an executable check;
//! * the **SGX counter-tree cost model** of §V-D ([`sgx`]).
//!
//! # Example
//!
//! ```
//! use plp_core::{run_benchmark, SystemConfig, UpdateScheme};
//! use plp_trace::spec;
//!
//! let profile = spec::benchmark("gcc").unwrap();
//! let base = run_benchmark(
//!     &profile, &SystemConfig::for_scheme(UpdateScheme::SecureWb), 30_000, 1);
//! let sp = run_benchmark(
//!     &profile, &SystemConfig::for_scheme(UpdateScheme::Sp), 30_000, 1);
//! // Strict persistency with sequential updates is dramatically
//! // slower than the no-persistency baseline (Fig. 8).
//! assert!(sp.normalized_to(&base) > 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod crash;
pub mod engine;
mod error;
pub mod failpoint;
pub mod fault;
mod fastmap;
pub mod meta;
mod recovery;
mod report;
pub mod retry;
pub mod sanitizer;
pub mod sgx;
pub mod shard;
mod system;
mod tuple;
mod wpq;

pub use config::{ProtectionScope, SystemConfig, UpdateScheme};
pub use crash::{
    recover_image, recovery_scratch_path, replay_image, DurableSink, RecoveryWriteback,
    ReplayedImage,
};
pub use error::ConfigError;
pub use failpoint::{Failpoint, FailpointPlan, FailpointRegistry, FiredFailpoint};
pub use fault::{
    BlockFate, FaultClass, FaultConfig, FaultInjector, FaultOutcome, FaultSpec, FaultSweep,
    FaultVerdict, RebuildStrategy, RecoveryError, RecoveryManager, RecoveryOutcome, RootStatus,
    SchemeRobustness,
};
pub use recovery::{
    with_component_lost, with_component_reordered, ObserverExpectation, PersistImage,
    RecoveryChecker, RecoveryCost, RecoveryReport, TupleComponent,
};
pub use report::RunReport;
pub use sanitizer::{
    Sanitizer, SanitizerMode, SanitizerSummary, SchemeContract, Violation, ViolationKind,
};
pub use shard::{ShardMutation, ShardTopology, ShardedSetup};
pub use system::{run_benchmark, run_trace, run_with_crash, FinishedSim, SimSetup, Simulation};
pub use tuple::{EpochId, PersistId, PersistRecord, TupleTimes};
pub use wpq::{Wpq, WpqEntry};
