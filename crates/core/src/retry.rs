//! The canonical path of the workspace retry/backoff policy.
//!
//! The implementation lives in [`plp_events::retry`] because the NVM
//! device model sits *below* `plp-core` in the crate graph and must
//! consume the same policy (its transient-read-fault controller backs
//! off through it). Everything above `plp-core` — the experiment
//! harness's run supervisor in particular — imports it from here, so
//! there is exactly one retry implementation in the tree and
//! `plp_core::retry` is its one front door.
//!
//! # Example
//!
//! ```
//! use plp_core::retry::{RetryPolicy, RetryToken};
//!
//! // The harness supervisor's shape: exponential, jittered, bounded,
//! // seeded by the run key so schedules replay exactly.
//! let policy = RetryPolicy::exponential(3, 25.0e6).with_jitter(0.25);
//! let token = RetryToken::new(0xC0FFEE).mix_str("gcc|scheme=o3|seed=7");
//! assert_eq!(policy.schedule(token), policy.schedule(token));
//! ```

pub use plp_events::retry::{RetryPolicy, RetryToken};
