//! # PLP — Persist-Level Parallelism for Secure Persistent Memory
//!
//! A full-system reproduction of *"Persist Level Parallelism:
//! Streamlining Integrity Tree Updates for Secure Persistent Memory"*
//! (Freij, Yuan, Zhou, Solihin — MICRO 2020).
//!
//! This facade crate re-exports the whole stack:
//!
//! * [`events`] — deterministic discrete-event kernel;
//! * [`crypto`] — counter-mode encryption, split counters, stateful MACs;
//! * [`bmt`] — Bonsai Merkle Tree geometry, labelling, LCA and the
//!   functional integrity tree;
//! * [`cache`] — set-associative caches and the metadata caches;
//! * [`nvm`] — the PCM-style NVM device model;
//! * [`trace`] — workload synthesis calibrated to the paper's Table V;
//! * [`core`] — the paper's contribution: memory tuples, the 2-step
//!   persist WPQ, the PTT/ETT schedulers, the six BMT update engines,
//!   persistency models, crash injection and the recovery checker.
//!
//! # Quickstart
//!
//! ```
//! use plp::core::{SimSetup, SystemConfig, UpdateScheme};
//! use plp::trace::{spec::benchmark, TraceGenerator};
//!
//! // Simulate the paper's `coalescing` scheme on a short gcc-like trace.
//! let profile = benchmark("gcc").expect("known benchmark");
//! let trace = TraceGenerator::new(profile.clone(), 42).generate(20_000);
//!
//! let mut config = SystemConfig::default();
//! config.scheme = UpdateScheme::Coalescing;
//! let setup = SimSetup::new(config).expect("valid configuration");
//! let report = setup.simulation().run(&trace);
//! assert!(report.total_cycles.get() > 0);
//! ```

pub use plp_bmt as bmt;
pub use plp_cache as cache;
pub use plp_core as core;
pub use plp_crypto as crypto;
pub use plp_events as events;
pub use plp_nvm as nvm;
pub use plp_trace as trace;
